package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"gfs/internal/auth"
	"gfs/internal/core"
	"gfs/internal/critpath"
	"gfs/internal/sim"
	"gfs/internal/units"
)

// traceWorkload builds a small two-site WAN topology, seeds a file at
// the owning site, reads it remotely (read-ahead, tokens, a revoke via
// a second writer). Observability must already be installed.
func traceWorkload(t *testing.T) {
	t.Helper()
	s := newSim()
	nw := newEthernetNet(s)
	owner := NewSite(s, nw, "alpha")
	owner.BuildFS(FSOptions{
		Name: "gpfs0", BlockSize: 256 * units.KiB,
		Servers: 2, ServerEth: units.Gbps,
		StoreRate: 200 * units.MBps, StoreCap: 64 * units.GiB, StoreStreams: 2,
	})
	importer := NewSite(s, nw, "beta")
	importer.BuildFS(FSOptions{
		Name: "scratch", BlockSize: 256 * units.KiB,
		Servers: 1, ServerEth: units.Gbps,
		StoreRate: 200 * units.MBps, StoreCap: 64 * units.GiB, StoreStreams: 2,
	})
	nw.DuplexLink("wan", owner.Switch, importer.Switch, units.Gbps, 10*sim.Millisecond)
	device := Peer(owner, importer, auth.ReadWrite)

	writer := owner.AddClients(1, units.Gbps, core.DefaultClientConfig())[0]
	reader := importer.AddClients(1, units.Gbps, core.DefaultClientConfig())[0]

	run(s, func(p *sim.Proc) error {
		mw, err := writer.MountLocal(p, owner.FS)
		if err != nil {
			return err
		}
		if err := seedFile(p, mw, "/data", 16*units.MiB, units.MiB); err != nil {
			return err
		}
		mr, err := reader.MountRemote(p, device)
		if err != nil {
			return err
		}
		f, err := mr.Open(p, "/data")
		if err != nil {
			return err
		}
		if err := f.Read(p, 8*units.MiB); err != nil {
			return err
		}
		// Overlapping writes from the remote side force token revocation
		// against the seeder's exclusive ranges.
		g, err := mr.Open(p, "/data")
		if err != nil {
			return err
		}
		if err := g.WriteAt(p, 0, 2*units.MiB); err != nil {
			return err
		}
		if err := g.Close(p); err != nil {
			return err
		}
		return f.Close(p)
	})
}

// traceRun installs observability, runs traceWorkload, and returns the
// observability products: the Chrome trace bytes, the JSONL bytes, the
// mmpmon snapshot and the registry.
func traceRun(t *testing.T) (chrome, jsonl, snapshot, registry []byte) {
	t.Helper()
	o := SetObservability(&ObsConfig{Trace: true, Stats: true})
	defer SetObservability(nil)
	traceWorkload(t)

	var cb, jb, sb bytes.Buffer
	if err := o.Tracer.WriteChrome(&cb); err != nil {
		t.Fatal(err)
	}
	if err := o.Tracer.WriteJSONL(&jb); err != nil {
		t.Fatal(err)
	}
	o.Snapshot(&sb)
	return cb.Bytes(), jb.Bytes(), sb.Bytes(), []byte(o.Registry.Render())
}

// TestTraceDeterminism runs the same seeded experiment twice and demands
// byte-identical observability output — the property that makes traces
// diffable across code changes.
func TestTraceDeterminism(t *testing.T) {
	c1, j1, s1, r1 := traceRun(t)
	c2, j2, s2, r2 := traceRun(t)
	if !bytes.Equal(c1, c2) {
		t.Error("Chrome trace differs between identical runs")
	}
	if !bytes.Equal(j1, j2) {
		t.Error("JSONL trace differs between identical runs")
	}
	if !bytes.Equal(s1, s2) {
		t.Error("mmpmon snapshot differs between identical runs")
	}
	if !bytes.Equal(r1, r2) {
		t.Error("metrics registry differs between identical runs")
	}
	if len(c1) == 0 || len(j1) == 0 || len(s1) == 0 || len(r1) == 0 {
		t.Fatal("empty observability output")
	}
}

// TestAttributionDeterminism: the rendered critical-path attribution of
// two identical runs must be byte-identical, and must attribute time to
// the phases this topology exercises (WAN propagation, disk service,
// network serialization).
func TestAttributionDeterminism(t *testing.T) {
	render := func() string {
		o := SetObservability(&ObsConfig{Trace: true})
		defer SetObservability(nil)
		traceWorkload(t)
		return critpath.Analyze(o.Tracer).String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("attribution reports differ between identical runs:\n%s\n---\n%s", a, b)
	}
	for _, want := range []string{"read", "write", "fetch", "wan_prop", "disk"} {
		if !strings.Contains(a, want) {
			t.Errorf("attribution report missing %q:\n%s", want, a)
		}
	}
}

// TestAttributionConservation: on a real end-to-end workload every op's
// phase breakdown must sum exactly to its end-to-end latency — the
// causal tree wiring through tokens, RPCs, flows and disks loses no
// intervals and double-counts none.
func TestAttributionConservation(t *testing.T) {
	o := SetObservability(&ObsConfig{Trace: true})
	defer SetObservability(nil)
	traceWorkload(t)
	rep := critpath.Analyze(o.Tracer)
	if len(rep.Ops) == 0 {
		t.Fatal("no operations analyzed")
	}
	for _, s := range rep.Ops {
		var total int64
		for _, d := range s.Phases {
			total += d
		}
		if total != s.TotalNs {
			t.Errorf("%s: phase sum %d != e2e total %d", s.Name, total, s.TotalNs)
		}
	}
}

// TestTraceCoversStack verifies the full-stack coverage the monitor
// promises: RPC, flow, NSD, token, cache and auth events all appear, and
// the mmpmon snapshot agrees with MountStats.
func TestTraceCoversStack(t *testing.T) {
	o := SetObservability(&ObsConfig{Trace: true, Stats: true})
	defer SetObservability(nil)

	s := newSim()
	nw := newEthernetNet(s)
	owner := NewSite(s, nw, "alpha")
	owner.BuildFS(FSOptions{
		Name: "gpfs0", BlockSize: 256 * units.KiB,
		Servers: 2, ServerEth: units.Gbps,
		StoreRate: 200 * units.MBps, StoreCap: 64 * units.GiB, StoreStreams: 2,
	})
	importer := NewSite(s, nw, "beta")
	importer.BuildFS(FSOptions{
		Name: "scratch", BlockSize: 256 * units.KiB,
		Servers: 1, ServerEth: units.Gbps,
		StoreRate: 200 * units.MBps, StoreCap: 64 * units.GiB, StoreStreams: 2,
	})
	nw.DuplexLink("wan", owner.Switch, importer.Switch, units.Gbps, 10*sim.Millisecond)
	// ReadWrite: Close publishes the size via a setsize metadata write,
	// which a read-only grant would refuse.
	device := Peer(owner, importer, auth.ReadWrite)
	writer := owner.AddClients(1, units.Gbps, core.DefaultClientConfig())[0]
	reader := importer.AddClients(1, units.Gbps, core.DefaultClientConfig())[0]

	var st core.MountStats
	run(s, func(p *sim.Proc) error {
		mw, err := writer.MountLocal(p, owner.FS)
		if err != nil {
			return err
		}
		if err := seedFile(p, mw, "/data", 8*units.MiB, units.MiB); err != nil {
			return err
		}
		mr, err := reader.MountRemote(p, device)
		if err != nil {
			return err
		}
		f, err := mr.Open(p, "/data")
		if err != nil {
			return err
		}
		if err := f.Read(p, 8*units.MiB); err != nil {
			return err
		}
		if err := f.Close(p); err != nil {
			return err
		}
		st = mr.Stats()
		return nil
	})

	for _, cat := range []string{"rpc", "flow", "nsd", "token", "cache", "auth"} {
		if o.Tracer.CountByCat(cat) == 0 {
			t.Errorf("no %q events in trace (%s)", cat, o.Tracer.Summary())
		}
	}
	if st.BytesRead != 8*units.MiB {
		t.Fatalf("remote mount read %v, want 8 MiB", st.BytesRead)
	}
	if st.Opens != 1 || st.Closes != 1 || st.Reads == 0 {
		t.Fatalf("op counts %+v", st)
	}

	// The snapshot must carry the same per-mount byte totals as
	// MountStats.
	var buf bytes.Buffer
	o.Snapshot(&buf)
	want := fmt.Sprintf("bytes read: %d", int64(st.BytesRead))
	if !bytes.Contains(buf.Bytes(), []byte(want)) {
		t.Fatalf("snapshot missing %q:\n%s", want, buf.String())
	}
	if !bytes.Contains(buf.Bytes(), []byte("mmpmon node beta/c0 fs_io_s OK")) {
		t.Fatalf("snapshot missing importer fs_io_s section:\n%s", buf.String())
	}
	if !bytes.Contains(buf.Bytes(), []byte("mmpmon resource ")) {
		t.Fatalf("snapshot missing resource utilization lines:\n%s", buf.String())
	}
}

// TestPeriodicSnapshotsDrain: a live snapshot tick must not keep the
// simulation from draining, and must fire while work is in flight.
func TestPeriodicSnapshotsDrain(t *testing.T) {
	var out bytes.Buffer
	SetObservability(&ObsConfig{Stats: true, Interval: 50 * sim.Millisecond, Out: &out})
	defer SetObservability(nil)

	s := newSim()
	nw := newEthernetNet(s)
	site := NewSite(s, nw, "solo")
	site.BuildFS(FSOptions{
		Name: "gpfs0", BlockSize: 256 * units.KiB,
		Servers: 1, ServerEth: units.Gbps,
		StoreRate: 100 * units.MBps, StoreCap: units.GiB, StoreStreams: 2,
	})
	client := site.AddClients(1, units.Gbps, core.DefaultClientConfig())[0]
	run(s, func(p *sim.Proc) error {
		m, err := client.MountLocal(p, site.FS)
		if err != nil {
			return err
		}
		return seedFile(p, m, "/f", 64*units.MiB, units.MiB)
	})
	if n := bytes.Count(out.Bytes(), []byte("=== mmpmon snapshot")); n < 2 {
		t.Fatalf("expected several periodic snapshots, got %d:\n%.500s", n, out.String())
	}
}
