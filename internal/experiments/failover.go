package experiments

import (
	"fmt"

	"gfs/internal/core"
	"gfs/internal/fault"
	"gfs/internal/metrics"
	"gfs/internal/netsim"
	"gfs/internal/sim"
	"gfs/internal/timeline"
	"gfs/internal/units"
)

// FailoverConfig parameterizes the injected-crash dip-and-recovery run.
type FailoverConfig struct {
	Servers   int // NSD servers at the serving site
	Clients   int // remote reader nodes
	WANRate   units.BitsPerSec
	WANDelay  sim.Time
	FileSize  units.Bytes // per reader
	BlockSize units.Bytes
	Interval  sim.Time // bandwidth sampling bin

	CrashAt  sim.Time // when (after readers start) one NSD server dies
	Outage   sim.Time // how long it stays dead
	Duration sim.Time // total reader run time

	// ReadAhead / WriteBehind override the readers' pipelining depth and
	// dirty-page limit (gfssim -ra-depth / -wb-max-dirty). Zero keeps the
	// experiment defaults (32 blocks readahead, client-default dirty cap).
	ReadAhead   int
	WriteBehind int
}

// DefaultFailoverConfig scales the SC'03 topology down to a failure
// drill: 8 servers feeding 8 WAN readers, with one server dead for 8 s
// mid-run.
func DefaultFailoverConfig() FailoverConfig {
	return FailoverConfig{
		Servers:   8,
		Clients:   8,
		WANRate:   10 * units.Gbps,
		WANDelay:  6 * sim.Millisecond,
		FileSize:  units.GiB,
		BlockSize: units.MiB,
		Interval:  sim.Second,
		CrashAt:   6 * sim.Second,
		Outage:    8 * sim.Second,
		Duration:  30 * sim.Second,
	}
}

// RunFailover injects an NSD server crash under a steady WAN read load
// and measures the dip and recovery: bandwidth collapses while every
// read stream stalls on the dead server's blocks (striping puts one
// block in eight on it), retries ride out the outage under exponential
// backoff, and the restarted server is rediscovered automatically — no
// operator action — returning bandwidth to its pre-fault level.
func RunFailover(cfg FailoverConfig) *Result {
	res := NewResult("E7/failover", "WAN read bandwidth through an NSD server crash and restart")
	s := newSim()
	nw := newEthernetNet(s)

	prod := NewSite(s, nw, "prod")
	prod.BuildFS(FSOptions{
		Name: "gpfs-ha", BlockSize: cfg.BlockSize,
		Servers: cfg.Servers, ServerEth: 2 * units.Gbps,
		StoreRate: 400 * units.MBps, StoreCap: units.TB, StoreStreams: 4,
	})
	edgeSW := nw.NewNode("edge-sw")
	wanFwd, _ := nw.DuplexLink("wan", prod.Switch, edgeSW, cfg.WANRate, cfg.WANDelay)
	mon := metrics.NewRateMonitor(s, "wan", cfg.Interval)
	wanFwd.Monitor = mon

	// A local timeline tracks each NSD server's serve rate so the result
	// can report how unevenly the survivors carried the load while one
	// server was down (the per-window CoV across servers).
	tl := timeline.New(s, cfg.Interval)
	tl.Label = "failover"
	tl.AddSource(func(tk *timeline.Tick) {
		for _, srv := range prod.FS.Servers() {
			out, in := srv.BytesServed()
			tk.Rate("nsd."+srv.Name+".MBps", "MB/s", float64(out+in)/1e6)
		}
	})

	// Readers retry long enough to ride out the whole outage: there are
	// no backup servers here, so recovery is pure re-probe of the primary.
	ccfg := core.DefaultClientConfig()
	ccfg.ReadAhead = 32
	if cfg.ReadAhead > 0 {
		ccfg.ReadAhead = cfg.ReadAhead
	}
	if cfg.WriteBehind > 0 {
		ccfg.WriteBehind = cfg.WriteBehind
	}
	ccfg.Retry = netsim.RetryPolicy{
		MaxAttempts: 60,
		BaseBackoff: 50 * sim.Millisecond,
		MaxBackoff:  sim.Second,
	}
	var readers []*core.Client
	for i := 0; i < cfg.Clients; i++ {
		node := nw.NewNode(fmt.Sprintf("edge-c%d", i))
		nw.DuplexLink(fmt.Sprintf("edge-c%d-eth", i), node, edgeSW, 2*units.Gbps, lanDelay)
		readers = append(readers, core.NewClient(prod.Cluster, fmt.Sprintf("edge%d", i), node, ccfg,
			core.Identity{DN: fmt.Sprintf("/O=Edge/CN=reader%d", i)}))
	}
	seeder := prod.AddClients(1, 10*units.Gbps, core.DefaultClientConfig())[0]

	var start sim.Time
	var readErrs int
	run(s, func(p *sim.Proc) error {
		sm, err := seeder.MountLocal(p, prod.FS)
		if err != nil {
			return err
		}
		for i := 0; i < cfg.Clients; i++ {
			if err := seedFile(p, sm, fmt.Sprintf("/data%02d.dat", i), cfg.FileSize, 8*units.MiB); err != nil {
				return err
			}
		}
		mounts, err := MountAll(p, readers, prod.FS, "")
		if err != nil {
			return err
		}
		start = p.Now()
		end := start + cfg.Duration

		// The fault script: server 0 dies mid-run and restarts after the
		// outage. Striping places every eighth block on it, so every
		// sequential reader stalls within a few blocks of the crash.
		fault.NewPlan("server-crash").
			ServerCrash(start+cfg.CrashAt, cfg.Outage, prod.FS.Servers()[0]).
			Install(s)

		wg := sim.NewWaitGroup(s)
		for i, m := range mounts {
			m, i := m, i
			wg.Add(1)
			s.Go(fmt.Sprintf("reader%d", i), func(rp *sim.Proc) {
				defer wg.Done()
				f, err := m.Open(rp, fmt.Sprintf("/data%02d.dat", i))
				if err != nil {
					readErrs++
					return
				}
				for rp.Now() < end {
					for off := units.Bytes(0); off < f.Size() && rp.Now() < end; off += cfg.BlockSize {
						if err := f.ReadAt(rp, off, cfg.BlockSize); err != nil {
							readErrs++
							rp.Sleep(100 * sim.Millisecond)
						}
					}
					m.DropCaches() // next pass re-fetches over the WAN
				}
			})
		}
		wg.Wait(p)
		return nil
	})

	crash := cfg.CrashAt.Seconds()
	restart := (cfg.CrashAt + cfg.Outage).Seconds()
	ser := &metrics.Series{Name: "WAN bandwidth", XLabel: "time (s)", YLabel: "Gb/s"}
	var pts []timeline.Point
	for _, pt := range mon.SeriesGbps().Points {
		x := pt.X - start.Seconds()
		if x < 0 {
			continue
		}
		ser.Add(x, pt.Y)
		pts = append(pts, timeline.Point{T: x, V: pt.Y})
	}
	res.Add(ser)

	// The Fig. 5 quantities, computed instead of eyeballed: baseline from
	// t=1 (skipping the ramp) to the crash, minimum and mean across the
	// outage, recovery at the first post-restart window back to >= 90% of
	// baseline.
	rep := timeline.AnalyzeDip(pts, 1, crash, restart, cfg.Duration.Seconds(), 0.9)

	// How unevenly the surviving servers carried the outage: CoV across
	// per-server serve rates, window by window.
	cov := timeline.CoVSeries(tl.Prefix("nsd."), "NSD load CoV")
	covSer := &metrics.Series{Name: "NSD load CoV", XLabel: "time (s)", YLabel: "CoV"}
	peakCoV := 0.0
	for _, p := range cov.Points() {
		x := p.T - start.Seconds()
		if x < 0 {
			continue
		}
		covSer.Add(x, p.V)
		if x >= crash && x < restart && p.V > peakCoV {
			peakCoV = p.V
		}
	}
	res.Add(covSer)

	res.Headline["pre-fault Gb/s"] = rep.Baseline
	res.Headline["dip Gb/s"] = rep.Dip
	res.Headline["dip depth %"] = rep.DipDepthPct()
	res.Headline["outage Gb/s"] = rep.OutageMean
	res.Headline["post-recovery Gb/s"] = rep.Recovered
	res.Headline["recovery ratio"] = rep.Ratio
	res.Headline["time to recover s"] = rep.TimeToRecover
	res.Headline["peak NSD CoV (outage)"] = peakCoV
	res.Headline["read errors"] = float64(readErrs)
	res.Note(fmt.Sprintf("NSD server crash at t=%vs, restart at t=%vs; recovery is automatic (retry + re-probe)",
		cfg.CrashAt.Seconds(), restart))
	return res
}
