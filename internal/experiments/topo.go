package experiments

import (
	"fmt"

	"gfs/internal/auth"
	"gfs/internal/core"
	"gfs/internal/netsim"
	"gfs/internal/san"
	"gfs/internal/sim"
	"gfs/internal/units"
)

// lanDelay is an in-machine-room Ethernet hop.
const lanDelay = 50 * sim.Microsecond

// Site is one cluster's network and GFS state.
type Site struct {
	S       *sim.Sim
	Net     *netsim.Network
	Cluster *core.Cluster
	Switch  *netsim.Node
	Fabric  *san.Fabric // nil unless SAN-backed
	FS      *core.FileSystem
	Clients []*core.Client
}

// NewSite creates a cluster with an Ethernet core switch.
func NewSite(s *sim.Sim, nw *netsim.Network, name string) *Site {
	cl, err := core.NewCluster(s, nw, name, auth.AuthOnly)
	if err != nil {
		panic(err)
	}
	observeCluster(cl)
	return &Site{S: s, Net: nw, Cluster: cl, Switch: nw.NewNode(name + "-sw")}
}

// FSOptions sizes a site's filesystem.
type FSOptions struct {
	Name      string
	BlockSize units.Bytes
	Servers   int
	ServerEth units.BitsPerSec // NIC per NSD server
	// RateStore path (used when Arrays == 0): idealized per-NSD stores.
	StoreRate    units.BytesPerSec
	StoreCap     units.Bytes
	StoreStreams int
	// SAN path: real DS4100-style arrays; LUNs round-robin onto servers.
	Arrays      int
	ArrayCfg    san.ArrayConfig
	ServerHBA   units.BitsPerSec
	HBAsPer     int
	ServerConns int
}

// BuildFS provisions NSD servers, stores and the manager on the site.
func (st *Site) BuildFS(opt FSOptions) *core.FileSystem {
	if opt.ServerConns < 1 {
		opt.ServerConns = 2
	}
	fs := st.Cluster.CreateFS(opt.Name, opt.BlockSize)
	st.FS = fs
	servers := make([]*core.NSDServer, opt.Servers)
	nodes := make([]*netsim.Node, opt.Servers)
	for i := 0; i < opt.Servers; i++ {
		node := st.Net.NewNode(fmt.Sprintf("%s-nsd%d", st.Cluster.Name, i))
		st.Net.DuplexLink(fmt.Sprintf("%s-nsd%d-eth", st.Cluster.Name, i), node, st.Switch, opt.ServerEth, lanDelay)
		servers[i] = fs.AddServer(fmt.Sprintf("%s-srv%d", st.Cluster.Name, i), node, opt.ServerConns)
		nodes[i] = node
	}
	if opt.Arrays > 0 {
		if st.Fabric == nil {
			st.Fabric = san.NewFabric(st.S, st.Net)
		}
		sw := st.Fabric.Switch(st.Cluster.Name + "-san")
		hbas := opt.HBAsPer
		if hbas < 1 {
			hbas = 1
		}
		for i := range nodes {
			st.Fabric.AttachHBA(nodes[i], sw, opt.ServerHBA, hbas)
		}
		lun := 0
		for a := 0; a < opt.Arrays; a++ {
			arr := st.Fabric.NewArray(fmt.Sprintf("%s-ds%d", st.Cluster.Name, a), sw, opt.ArrayCfg)
			for l := range arr.Sets {
				srv := servers[lun%len(servers)]
				store := core.SANStore{Array: arr, LUN: l, Initiator: srv.EP}
				fs.AddNSD(fmt.Sprintf("%s-a%dl%d", st.Cluster.Name, a, l), store, srv)
				lun++
			}
		}
	} else {
		for i, srv := range servers {
			store := core.NewRateStore(st.S, fmt.Sprintf("%s-store%d", st.Cluster.Name, i),
				opt.StoreRate, opt.StoreCap, opt.StoreStreams)
			fs.AddNSD(fmt.Sprintf("%s-nsd%d", st.Cluster.Name, i), store, srv)
		}
	}
	mgr := st.Net.NewNode(st.Cluster.Name + "-mgr")
	st.Net.DuplexLink(st.Cluster.Name+"-mgr-eth", mgr, st.Switch, units.Gbps, lanDelay)
	fs.SetManager(mgr, 2)
	contact := st.Net.NewNode(st.Cluster.Name + "-contact")
	st.Net.DuplexLink(st.Cluster.Name+"-contact-eth", contact, st.Switch, units.Gbps, lanDelay)
	st.Cluster.SetContact(contact)
	return fs
}

// AddClients attaches n client nodes at the given NIC rate.
func (st *Site) AddClients(n int, nic units.BitsPerSec, cfg core.ClientConfig) []*core.Client {
	var out []*core.Client
	for i := 0; i < n; i++ {
		idx := len(st.Clients)
		node := st.Net.NewNode(fmt.Sprintf("%s-c%d", st.Cluster.Name, idx))
		st.Net.DuplexLink(fmt.Sprintf("%s-c%d-eth", st.Cluster.Name, idx), node, st.Switch, nic, lanDelay)
		cl := core.NewClient(st.Cluster, fmt.Sprintf("c%d", idx), node, cfg,
			core.Identity{DN: fmt.Sprintf("/O=Grid/CN=%s-user%d", st.Cluster.Name, idx)})
		st.Clients = append(st.Clients, cl)
		out = append(out, cl)
	}
	return out
}

// Peer wires site b to import site a's filesystem: key exchange, grant,
// remote-cluster and remote-fs definitions. Device name is returned.
func Peer(a, b *Site, access auth.Access) string {
	if err := a.Cluster.AuthAdd(b.Cluster.Name, b.Cluster.PublicPEM()); err != nil {
		panic(err)
	}
	if err := a.Cluster.AuthGrant(a.FS.Name, b.Cluster.Name, access); err != nil {
		panic(err)
	}
	if err := b.Cluster.RemoteClusterAdd(a.Cluster.Name, a.Cluster.Contact(), a.Cluster.PublicPEM()); err != nil {
		panic(err)
	}
	device := a.FS.Name + "@" + a.Cluster.Name
	if err := b.Cluster.RemoteFSAdd(device, a.Cluster.Name, a.FS.Name); err != nil {
		panic(err)
	}
	return device
}

// MountAll mounts the device (or the local FS when device == "") on every
// client, returning the mounts.
func MountAll(p *sim.Proc, clients []*core.Client, local *core.FileSystem, device string) ([]*core.Mount, error) {
	var out []*core.Mount
	for _, cl := range clients {
		var m *core.Mount
		var err error
		if device == "" {
			m, err = cl.MountLocal(p, local)
		} else {
			m, err = cl.MountRemote(p, device)
		}
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// run drives fn as a process to completion, panicking on error (experiment
// construction errors are programming errors).
func run(s *sim.Sim, fn func(p *sim.Proc) error) {
	var err error
	done := false
	s.Go("experiment", func(p *sim.Proc) {
		err = fn(p)
		done = true
	})
	s.Run()
	observeRunDone(s)
	if !done {
		panic("experiment deadlocked")
	}
	if err != nil {
		panic(err)
	}
}

// seedFile creates a sized file quickly through a client mount.
func seedFile(p *sim.Proc, m *core.Mount, name string, size, ioSize units.Bytes) error {
	f, err := m.Create(p, name, core.DefaultPerm)
	if err != nil {
		return err
	}
	for off := units.Bytes(0); off < size; off += ioSize {
		ln := ioSize
		if off+ln > size {
			ln = size - off
		}
		if err := f.WriteAt(p, off, ln); err != nil {
			return err
		}
	}
	return f.Close(p)
}

// ethEfficiency is the usable fraction of nominal Ethernet rate once
// IP/TCP framing at a 1500-byte MTU is paid — why a "10 Gb/s" link tops
// out near 9.4 Gb/s of goodput.
const ethEfficiency = 0.94

// newEthernetNet returns a network whose links are derated by Ethernet
// framing; the FC experiments (SC'02, StorCloud) build plain networks —
// FC nominal rates already name payload capacity.
func newEthernetNet(s *sim.Sim) *netsim.Network {
	nw := newNet(s)
	nw.LinkEfficiency = ethEfficiency
	// Large fleets tolerate slightly stale rate allocations in exchange
	// for an order of magnitude fewer allocation passes. The per-conn
	// term keeps that trade scale-free: a solve costs O(component), so
	// throttling proportionally bounds solver wall share no matter how
	// large the fleet grows, while the 200 us floor dominates below ~500
	// conns and leaves the small-fleet figure experiments untouched.
	nw.MinRecomputeInterval = 200 * sim.Microsecond
	nw.RecomputePerConn = 400 * sim.Nanosecond
	return nw
}
