package experiments

import (
	"fmt"

	"gfs/internal/auth"
	"gfs/internal/cachefs"
	"gfs/internal/core"
	"gfs/internal/sim"
	"gfs/internal/units"
)

// CacheConfig parameterizes the §8 automatic-caching experiment.
type CacheConfig struct {
	WANRate  units.BitsPerSec
	WANDelay sim.Time
	Files    int
	FileSize units.Bytes
	Budget   units.Bytes
	Accesses int // Zipf-ish: repeated touches of a small hot set
	HotSet   int
}

// DefaultCacheConfig models an edge site working against a distant
// library over a saturated-era WAN.
func DefaultCacheConfig() CacheConfig {
	return CacheConfig{
		WANRate:  units.Gbps,
		WANDelay: 30 * sim.Millisecond,
		Files:    12,
		FileSize: 512 * units.MiB,
		Budget:   4 * units.GiB,
		Accesses: 36,
		HotSet:   4,
	}
}

// RunCache quantifies §8's closing prediction — sites relying on central
// "copyright libraries" with "automatic caching … an integral piece of
// the overall file access mechanism" — by replaying an access trace with
// and without the edge cache.
func RunCache(cfg CacheConfig) *Result {
	res := NewResult("E10", "Automatic edge caching over a copyright library (§8)")

	trace := make([]int, cfg.Accesses)
	for i := range trace {
		if i%3 == 0 { // a third of accesses wander the catalog
			trace[i] = i % cfg.Files
		} else { // the rest hit the hot set
			trace[i] = i % cfg.HotSet
		}
	}

	build := func() (*sim.Sim, *Site, *core.Client, string) {
		s := newSim()
		nw := newEthernetNet(s)
		library := NewSite(s, nw, "library")
		library.BuildFS(FSOptions{
			Name: "archive", BlockSize: units.MiB,
			Servers: 8, ServerEth: units.Gbps,
			StoreRate: 400 * units.MBps, StoreCap: 50 * units.TB, StoreStreams: 4,
		})
		edge := NewSite(s, nw, "edge")
		edge.BuildFS(FSOptions{
			Name: "scratch", BlockSize: units.MiB,
			Servers: 4, ServerEth: units.Gbps,
			StoreRate: 400 * units.MBps, StoreCap: 10 * units.TB, StoreStreams: 4,
		})
		nw.DuplexLink("wan", library.Switch, edge.Switch, cfg.WANRate, cfg.WANDelay)
		device := Peer(library, edge, auth.ReadOnly)
		client := edge.AddClients(1, 2*units.Gbps, core.DefaultClientConfig())[0]
		return s, library, client, device
	}

	seed := func(p *sim.Proc, library *Site) error {
		seeder := library.AddClients(1, 10*units.Gbps, core.DefaultClientConfig())[0]
		m, err := seeder.MountLocal(p, library.FS)
		if err != nil {
			return err
		}
		for i := 0; i < cfg.Files; i++ {
			if err := seedFile(p, m, fmt.Sprintf("/ds%02d", i), cfg.FileSize, 8*units.MiB); err != nil {
				return err
			}
		}
		return nil
	}

	readAll := func(p *sim.Proc, f *core.File) error {
		for off := units.Bytes(0); off < f.Size(); off += units.MiB {
			if err := f.ReadAt(p, off, units.MiB); err != nil {
				return err
			}
		}
		return nil
	}

	// --- Baseline: every access crosses the WAN directly. ---
	var directTime sim.Time
	var directWAN units.Bytes
	{
		s, library, client, device := build()
		run(s, func(p *sim.Proc) error {
			if err := seed(p, library); err != nil {
				return err
			}
			m, err := client.MountRemote(p, device)
			if err != nil {
				return err
			}
			// A modest pagepool: working set exceeds it, as the paper's
			// dataset sizes exceeded site memory.
			t0 := p.Now()
			for _, idx := range trace {
				f, err := m.Open(p, fmt.Sprintf("/ds%02d", idx))
				if err != nil {
					return err
				}
				m.DropCaches()
				if err := readAll(p, f); err != nil {
					return err
				}
			}
			directTime = p.Now() - t0
			rd := m.Stats().BytesRead
			directWAN = rd
			return nil
		})
	}

	// --- Cached: same trace through the edge cache. ---
	var cachedTime sim.Time
	var cachedWAN units.Bytes
	var hits, misses uint64
	{
		s, library, client, device := build()
		run(s, func(p *sim.Proc) error {
			if err := seed(p, library); err != nil {
				return err
			}
			local, err := client.MountLocal(p, client.Cluster().FS("scratch"))
			if err != nil {
				return err
			}
			remote, err := client.MountRemote(p, device)
			if err != nil {
				return err
			}
			c, err := cachefs.New(s, p, local, remote, "/cache", cfg.Budget)
			if err != nil {
				return err
			}
			t0 := p.Now()
			for _, idx := range trace {
				f, err := c.Open(p, fmt.Sprintf("/ds%02d", idx))
				if err != nil {
					return err
				}
				local.DropCaches()
				if err := readAll(p, f); err != nil {
					return err
				}
			}
			cachedTime = p.Now() - t0
			rd := remote.Stats().BytesRead
			cachedWAN = rd
			hits, misses, _, _ = c.Stats()
			return nil
		})
	}

	res.Headline["direct trace s"] = directTime.Seconds()
	res.Headline["cached trace s"] = cachedTime.Seconds()
	res.Headline["speedup"] = directTime.Seconds() / cachedTime.Seconds()
	res.Headline["direct WAN GB"] = float64(directWAN) / 1e9
	res.Headline["cached WAN GB"] = float64(cachedWAN) / 1e9
	res.Headline["WAN reduction x"] = float64(directWAN) / float64(cachedWAN)
	res.Headline["cache hits"] = float64(hits)
	res.Headline["cache misses"] = float64(misses)
	res.Note("§8: edge sites with disk but no archive lean on central libraries; the cache converts repeat WAN reads into local ones")
	return res
}
