package experiments

import (
	"strings"
	"testing"

	"gfs/internal/sim"
	"gfs/internal/units"
)

// The full-size experiment configs run in the benchmark harness; tests use
// scaled-down versions to verify construction, plumbing and shape.

func TestSC02Small(t *testing.T) {
	cfg := DefaultSC02Config()
	cfg.FileSize = 4 * units.GB
	r := RunSC02(cfg)
	if r.Headline["sustained MB/s"] < 400 {
		t.Errorf("sustained = %.0f MB/s, want > 400 (paper: 720)", r.Headline["sustained MB/s"])
	}
	if r.Headline["peak MB/s"] > r.Headline["path cap MB/s"]*1.05 {
		t.Errorf("peak %.0f exceeds path cap %.0f", r.Headline["peak MB/s"], r.Headline["path cap MB/s"])
	}
	if len(r.Series) == 0 || r.Series[0].Len() < 3 {
		t.Error("no time series produced")
	}
}

func TestSC03Small(t *testing.T) {
	cfg := DefaultSC03Config()
	cfg.Servers = 10
	cfg.VizNodes = 12
	cfg.Files = 24
	cfg.FileSize = 512 * units.MiB
	cfg.RestartGap = 4 * sim.Second
	r := RunSC03(cfg)
	if r.Headline["peak Gb/s"] < 6 {
		t.Errorf("peak = %.2f Gb/s, want > 6 (paper: 8.96 on 10GbE)", r.Headline["peak Gb/s"])
	}
	if r.Headline["peak Gb/s"] > 10.01 {
		t.Errorf("peak = %.2f Gb/s exceeds the link", r.Headline["peak Gb/s"])
	}
	// The restart gap must appear as a dip: some interior bin well below peak.
	ser := r.Series[0]
	dip := false
	for _, pt := range ser.Points[2 : ser.Len()-2] {
		if pt.Y < r.Headline["peak Gb/s"]*0.3 {
			dip = true
		}
	}
	if !dip {
		t.Error("no visible dip at the viz-app restart")
	}
}

func TestSC04Small(t *testing.T) {
	cfg := DefaultSC04Config()
	cfg.Servers = 12
	cfg.SiteNodes = 10
	cfg.ReadFiles = 20
	cfg.FileSize = 512 * units.MiB
	cfg.WriteBytes = 256 * units.MiB
	cfg.Phases = 1
	r := RunSC04(cfg)
	if r.Headline["peak aggregate Gb/s"] < 8 {
		t.Errorf("aggregate peak = %.1f Gb/s, want > 8 with 20 GbE clients", r.Headline["peak aggregate Gb/s"])
	}
	if r.Headline["peak per-link Gb/s"] > 10.01 {
		t.Errorf("per-link peak %.1f exceeds 10 GbE", r.Headline["peak per-link Gb/s"])
	}
	if len(r.Series) != cfg.WANLinks+1 {
		t.Errorf("series = %d, want %d per-link + aggregate", len(r.Series), cfg.WANLinks+1)
	}
}

func TestStorCloudSmall(t *testing.T) {
	cfg := DefaultStorCloudConfig()
	cfg.Servers = 10
	cfg.Arrays = 8
	cfg.PerServer = 2 * units.GiB
	r := RunStorCloudLocal(cfg)
	// 10 servers x 3 HBA x 250 MB/s = 7.5 GB/s HBA-side; 8 arrays x 2 ctl
	// x 250 MB/s = 4 GB/s controller-side cap.
	if r.Headline["aggregate GB/s"] < 1.5 {
		t.Errorf("aggregate = %.2f GB/s, too low", r.Headline["aggregate GB/s"])
	}
	if r.Headline["aggregate GB/s"] > 4.05 {
		t.Errorf("aggregate = %.2f GB/s exceeds controller cap", r.Headline["aggregate GB/s"])
	}
}

func TestProductionSmall(t *testing.T) {
	cfg := DefaultProductionConfig()
	cfg.Servers = 16
	cfg.Arrays = 8
	cfg.NodeCounts = []int{2, 8, 16}
	cfg.SizePer = 256 * units.MiB
	r := RunProductionScaling(cfg)
	read, write := r.Series[0], r.Series[1]
	if read.Len() != 3 || write.Len() != 3 {
		t.Fatalf("series lens %d/%d", read.Len(), write.Len())
	}
	// Reads scale with node count until saturation.
	if !(read.Points[1].Y > read.Points[0].Y*2) {
		t.Errorf("read scaling broken: %v", read.Points)
	}
	// The paper's asymmetry: writes below reads at scale.
	if write.Points[2].Y >= read.Points[2].Y {
		t.Errorf("write %.0f >= read %.0f at 16 nodes; RAID5 penalty missing",
			write.Points[2].Y, read.Points[2].Y)
	}
}

func TestANLSmall(t *testing.T) {
	cfg := DefaultANLConfig()
	cfg.Production.Servers = 16
	cfg.Production.Arrays = 8
	cfg.ANLNodes = 16
	cfg.SizePer = 256 * units.MiB
	r := RunANL(cfg)
	// 16 nodes x GbE = 2 GB/s demand against a 1.25 GB/s WAN: should land
	// near the WAN cap.
	if r.Headline["aggregate GB/s"] < 0.9 {
		t.Errorf("aggregate = %.2f GB/s, want near the 1.25 GB/s WAN cap", r.Headline["aggregate GB/s"])
	}
	if r.Headline["aggregate GB/s"] > 1.3 {
		t.Errorf("aggregate = %.2f GB/s exceeds the WAN", r.Headline["aggregate GB/s"])
	}
}

func TestDEISASmall(t *testing.T) {
	cfg := DefaultDEISAConfig()
	cfg.Sites = []string{"cineca", "fzj", "rzg"}
	cfg.Servers = 4
	cfg.FileSize = 512 * units.MiB
	r := RunDEISA(cfg)
	if r.Headline["min pair MB/s"] < 100 {
		t.Errorf("min pair = %.0f MB/s, paper says >100", r.Headline["min pair MB/s"])
	}
	if r.Headline["max pair MB/s"] > 126 {
		t.Errorf("max pair = %.0f MB/s exceeds 1 Gb/s", r.Headline["max pair MB/s"])
	}
	if r.Series[0].Len() != 6 {
		t.Errorf("pairs = %d, want 6", r.Series[0].Len())
	}
}

func TestParadigmSmall(t *testing.T) {
	cfg := DefaultParadigmConfig()
	cfg.FileSize = 8 * units.GB
	cfg.Queries = 100
	cfg.TouchedFiles = 4
	r := RunParadigm(cfg)
	if r.Headline["speedup"] <= 1 {
		t.Errorf("GFS speedup = %.2f, want > 1 for partial access", r.Headline["speedup"])
	}
	if r.Headline["byte amplification (GridFTP)"] < 5 {
		t.Errorf("amplification = %.1f, want large", r.Headline["byte amplification (GridFTP)"])
	}
	if r.Headline["GFS bytes moved GB"] > 2*r.Headline["useful bytes GB"]+1 {
		t.Errorf("GFS moved %.1f GB for %.1f GB useful", r.Headline["GFS bytes moved GB"], r.Headline["useful bytes GB"])
	}
}

func TestHSMSmall(t *testing.T) {
	cfg := DefaultHSMConfig()
	cfg.Files = 12
	cfg.FileSize = 200 * units.GB
	cfg.DiskPool = units.TB
	cfg.Accesses = 10
	r := RunHSM(cfg)
	if r.Headline["migrations"] == 0 {
		t.Error("no migrations with dataset > pool")
	}
	if r.Headline["recalls"] == 0 {
		t.Error("no recalls triggered")
	}
	if r.Headline["mean recall s"] < 60 {
		t.Errorf("mean recall %.0f s; tape cannot be that fast", r.Headline["mean recall s"])
	}
	if r.Headline["mean resident s"] != 0 {
		t.Errorf("resident access took %.2f s", r.Headline["mean resident s"])
	}
}

func TestRegistryAndRendering(t *testing.T) {
	if len(All()) != 12 {
		t.Errorf("registry has %d experiments, want 12", len(All()))
	}
	if _, ok := ByName("production"); !ok {
		t.Error("ByName(production) missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope) found")
	}
	r := NewResult("X", "test")
	r.Headline["a metric"] = 1.5
	r.Note("hello %d", 7)
	out := r.String()
	for _, want := range []string{"== X: test ==", "a metric", "1.50", "hello 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestCacheExperimentSmall(t *testing.T) {
	cfg := DefaultCacheConfig()
	cfg.Files = 6
	cfg.FileSize = 64 * units.MiB
	cfg.Budget = 512 * units.MiB
	cfg.Accesses = 12
	cfg.HotSet = 2
	r := RunCache(cfg)
	if r.Headline["speedup"] <= 1.5 {
		t.Errorf("cache speedup = %.2f, want > 1.5", r.Headline["speedup"])
	}
	if r.Headline["WAN reduction x"] <= 1.5 {
		t.Errorf("WAN reduction = %.2f", r.Headline["WAN reduction x"])
	}
	if r.Headline["cache hits"] == 0 {
		t.Error("no cache hits")
	}
}
