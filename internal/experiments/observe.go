package experiments

import (
	"bufio"
	"fmt"
	"io"

	"gfs/internal/core"
	"gfs/internal/critpath"
	"gfs/internal/metrics"
	"gfs/internal/netsim"
	"gfs/internal/sim"
	"gfs/internal/timeline"
	"gfs/internal/trace"
)

// ObsConfig selects what the observability layer collects while
// experiments run. Experiments build their own simulators inside Run, so
// the CLI cannot attach tracers directly; instead it installs a
// package-level hook with SetObservability and every simulator, network
// and cluster the experiments create is wired up as it is born.
type ObsConfig struct {
	// Trace collects virtual-time events for the Chrome/JSONL exporters.
	Trace bool
	// Stats attaches a metrics registry and enables mmpmon snapshots.
	Stats bool
	// Interval emits a live mmpmon snapshot to Out every so much
	// *simulated* time. Zero means no periodic snapshots (the caller can
	// still take a final one with Snapshot).
	Interval sim.Time
	// Out receives periodic snapshots; nil discards them.
	Out io.Writer

	// Engine attaches a sim.EngineProbe to every simulator: events/sec,
	// queue depth, per-kind wall attribution, allocations per event.
	Engine bool
	// EngineTraceEvery, with Engine and Trace on, emits one deterministic
	// engine/sample instant into the trace every so many fired events.
	EngineTraceEvery uint64

	// Bounded-memory tracing (all require Trace):
	// SampleOneIn keeps one operation in n via a deterministic hash of
	// the op ID (n <= 1 keeps everything).
	SampleOneIn uint64
	// Stream writes each kept event as a JSONL line immediately and
	// retains nothing, so trace memory stays O(1) in run length.
	Stream io.Writer
	// Ring retains only the last n events (0 = unbounded buffer).
	Ring int
	// Agg folds spans into an incremental critpath aggregate as they are
	// recorded. Without Stream or Ring the tracer is put in discard mode:
	// attribution with zero event retention.
	Agg bool

	// Timeline attaches a timeline.Collector to every simulator: per-
	// interval rates for every resource (NSD servers, links, clients,
	// token managers, the engine itself), sampled at TimelineInterval
	// (default one simulated second). With Stats snapshots on, each
	// snapshot additionally carries "mmpmon rate" lines from the latest
	// window.
	Timeline         bool
	TimelineInterval sim.Time
	// TimelineRing bounds every series to its last n windows, making
	// timeline memory independent of run length (0 = unbounded).
	TimelineRing int
	// TimelineStream writes one JSONL line per tick per simulator to
	// this writer, retaining nothing beyond the ring. Runs in a sweep
	// append in execution order; lines are byte-deterministic.
	TimelineStream io.Writer
	// TimelineExport publishes every window to an HTTP exporter.
	TimelineExport *timeline.Exporter
	// TimelineOnTick is invoked after each window closes — the live
	// terminal dashboard hook (cmd/gfstop).
	TimelineOnTick func(*timeline.Collector, timeline.Snapshot)
}

// Obs is the live state of one observed run: the shared tracer and
// registry plus every simulator and cluster created while it was
// installed.
type Obs struct {
	cfg      ObsConfig
	Tracer   *trace.Tracer
	Registry *metrics.Registry
	// Agg is the incremental critical-path aggregator (cfg.Agg only).
	Agg      *critpath.Agg
	sims     []*sim.Sim
	clusters []*core.Cluster

	// Engine telemetry: one probe per simulator, and one finished window
	// per run — captured the moment a run's event loop drains, so a
	// window's wall clock is not polluted by later runs in the same sweep.
	probes      []*sim.EngineProbe
	engineSnaps []sim.EngineSnapshot
	snapped     map[*sim.EngineProbe]bool

	// Timeline collectors: one per simulator, in creation order, plus a
	// shared buffered stream writer when cfg.TimelineStream is set (one
	// buffer across collectors keeps a sweep's lines in tick order).
	tls      []*timeline.Collector
	tlBySim  map[*sim.Sim]*timeline.Collector
	tlStream *bufio.Writer
}

// obs is the installed hook; nil means observability is off and every
// instrumentation site degrades to a branch or two.
var obs *Obs

// SetObservability installs the observability hook for subsequent
// experiment runs (nil removes it). It returns the Obs whose Tracer,
// Registry and Snapshot carry the results.
func SetObservability(cfg *ObsConfig) *Obs {
	if cfg == nil {
		obs = nil
		return nil
	}
	o := &Obs{cfg: *cfg, snapped: map[*sim.EngineProbe]bool{},
		tlBySim: map[*sim.Sim]*timeline.Collector{}}
	if cfg.TimelineStream != nil {
		o.tlStream = bufio.NewWriterSize(cfg.TimelineStream, 1<<16)
	}
	if cfg.Trace {
		// trace.Config resolves retention precedence (Stream > Ring >
		// Discard > buffer) exactly as the CLI always did, so the whole
		// bounded-memory surface maps onto one declarative struct.
		tc := trace.Config{
			SampleOneIn: cfg.SampleOneIn,
			Stream:      cfg.Stream,
			Ring:        cfg.Ring,
			Discard:     cfg.Agg,
		}
		if cfg.Agg {
			o.Agg = critpath.NewAgg()
			tc.Observer = o.Agg.Observe
		}
		o.Tracer = trace.New()
		o.Tracer.Configure(tc)
	}
	if cfg.Stats {
		o.Registry = metrics.NewRegistry()
	}
	obs = o
	return o
}

// Observability returns the installed hook, or nil.
func Observability() *Obs { return obs }

// newSim builds a simulator on the installed scheduler (SetScheduler)
// and, when observability is on, attaches the tracer and the periodic
// snapshot tick. All experiments create their simulators through this.
func newSim() *sim.Sim {
	sched, err := sim.NewScheduler(schedName)
	if err != nil {
		// SetScheduler validated the name; reaching here is a bug.
		panic(err)
	}
	s := sim.NewWith(sched)
	if obs != nil {
		obs.attachSim(s)
	}
	return s
}

// newNet builds a plain network on s, attaching the metrics registry and
// the installed solver tolerance (SetSolveTolerance).
func newNet(s *sim.Sim) *netsim.Network {
	nw := netsim.New(s)
	nw.SolveTolerance = solveTol
	if obs != nil {
		nw.Metrics = obs.Registry
	}
	return nw
}

func (o *Obs) attachSim(s *sim.Sim) {
	o.sims = append(o.sims, s)
	if o.Tracer != nil {
		s.SetTracer(o.Tracer)
	}
	if o.cfg.Engine {
		p := sim.NewEngineProbe()
		if o.Tracer != nil {
			p.TraceSampleEvery = o.cfg.EngineTraceEvery
		}
		s.SetEngineProbe(p)
		o.probes = append(o.probes, p)
	}
	// The timeline collector attaches before the snapshot tick so that
	// when both intervals coincide the window closes first and the
	// snapshot's "mmpmon rate" lines show the window just ended.
	if o.cfg.Timeline {
		o.attachTimeline(s)
	}
	if o.cfg.Stats && o.cfg.Interval > 0 && o.cfg.Out != nil {
		var tick func()
		tick = func() {
			o.snapshotSim(o.cfg.Out, s)
			// Daemon ticks never keep Run from draining.
			s.AtDaemon(s.Now()+o.cfg.Interval, tick)
		}
		s.AtDaemon(o.cfg.Interval, tick)
	}
}

// attachTimeline builds one collector for s and wires the whole-stack
// source: engine event rate, per-link bytes and saturation, per-NSD
// server MB/s and queue depth, per-NSD store utilization, per-client op
// and cache-hit rates, and token-manager grant/revoke/wait-queue depth.
// The source enumerates the observed clusters at every tick, so objects
// created mid-run join the timeline the window they appear.
func (o *Obs) attachTimeline(s *sim.Sim) *timeline.Collector {
	iv := o.cfg.TimelineInterval
	if iv <= 0 {
		iv = sim.Second
	}
	tl := timeline.New(s, iv)
	tl.Label = fmt.Sprintf("sim%d", len(o.sims)-1)
	if o.cfg.TimelineRing > 0 {
		tl.SetRing(o.cfg.TimelineRing)
	}
	if o.tlStream != nil {
		tl.SetStream(o.tlStream)
	}
	tl.AddSource(func(tk *timeline.Tick) { o.sampleSim(s, tk) })
	if o.cfg.TimelineExport != nil {
		o.cfg.TimelineExport.Attach(tl)
	}
	if o.cfg.TimelineOnTick != nil {
		tl.OnTick(o.cfg.TimelineOnTick)
	}
	o.tls = append(o.tls, tl)
	o.tlBySim[s] = tl
	return tl
}

// sampleSim emits one window's worth of whole-stack instruments for the
// clusters living on s. Enumeration order is deterministic: clusters in
// registration order, filesystems and clients sorted by name, servers,
// NSDs and links in creation order — and the collector re-sorts series
// by name anyway before recording.
func (o *Obs) sampleSim(s *sim.Sim, tk *timeline.Tick) {
	tk.Rate("engine.events_per_s", "ev/s", float64(s.EventsFired()))
	seenNet := map[*netsim.Network]bool{}
	for _, c := range o.clusters {
		if c.Sim != s {
			continue
		}
		if c.Net != nil && !seenNet[c.Net] {
			seenNet[c.Net] = true
			for _, l := range c.Net.Links() {
				mbps := tk.Rate("link."+l.Name()+".MBps", "MB/s",
					float64(l.BytesDelivered())/1e6)
				if capMBps := float64(l.Capacity()) / 8 / 1e6; capMBps > 0 {
					tk.Gauge("link."+l.Name()+".util", "frac", mbps/capMBps)
				}
			}
		}
		for _, fs := range c.Filesystems() {
			grants, revokes := fs.TokenStats()
			tk.Rate("token."+fs.Name+".grants_per_s", "ops/s", float64(grants))
			tk.Rate("token."+fs.Name+".revokes_per_s", "ops/s", float64(revokes))
			tk.Gauge("token."+fs.Name+".waiting", "reqs", float64(fs.TokenWaiters()))
			tk.Rate("meta."+fs.Name+".ops_per_s", "ops/s", float64(fs.MetaOps()))
			for k := 0; k < fs.TokenShards(); k++ {
				g, r, esc, st := fs.ShardStats(k)
				pre := fmt.Sprintf("token.%s.s%d.", fs.Name, k)
				tk.Rate(pre+"grants_per_s", "ops/s", float64(g))
				tk.Rate(pre+"revokes_per_s", "ops/s", float64(r))
				tk.Rate(pre+"escalations_per_s", "ops/s", float64(esc))
				tk.Rate(pre+"steals_per_s", "ops/s", float64(st))
				tk.Gauge(pre+"waiting", "reqs", float64(fs.ShardWaiters(k)))
			}
			for _, srv := range fs.Servers() {
				out, in := srv.BytesServed()
				tk.Rate("nsd."+srv.Name+".read_MBps", "MB/s", float64(out)/1e6)
				tk.Rate("nsd."+srv.Name+".write_MBps", "MB/s", float64(in)/1e6)
				tk.Gauge("nsd."+srv.Name+".inflight", "rpcs", float64(srv.EP.InFlight()))
			}
			for _, n := range fs.NSDList() {
				// Cumulative busy time differenced per window is
				// utilization — the delta-to-rate machinery applies as-is.
				if bt, ok := n.Store.(core.BusyTimer); ok {
					tk.Rate("nsdstore."+n.Name+".util", "frac", bt.BusyTime().Seconds())
				}
				if n.QueueDepth() > 0 || tk.Seen("nsdstore."+n.Name+".qdepth") {
					tk.Gauge("nsdstore."+n.Name+".qdepth", "reqs", float64(n.QueueDepth()))
				}
			}
		}
		for _, cl := range c.Clients() {
			var st core.MountStats
			for _, m := range cl.Mounts() {
				ms := m.Stats()
				st.Reads += ms.Reads
				st.Writes += ms.Writes
				st.CacheHits += ms.CacheHits
				st.CacheMisses += ms.CacheMisses
			}
			tk.Rate("client."+cl.ID()+".ops_per_s", "ops/s", float64(st.Reads+st.Writes))
			tk.Ratio("client."+cl.ID()+".hit_rate", "frac",
				float64(st.CacheHits), float64(st.CacheHits+st.CacheMisses))
		}
	}
}

// Timelines returns every timeline collector created so far, one per
// simulator, in creation order.
func (o *Obs) Timelines() []*timeline.Collector { return o.tls }

// TimelineFor returns the collector attached to s, or nil.
func (o *Obs) TimelineFor(s *sim.Sim) *timeline.Collector { return o.tlBySim[s] }

// FlushTimeline flushes the shared timeline stream and returns the
// first error any collector hit while streaming.
func (o *Obs) FlushTimeline() error {
	for _, tl := range o.tls {
		if err := tl.StreamErr(); err != nil {
			return err
		}
	}
	if o.tlStream != nil {
		return o.tlStream.Flush()
	}
	return nil
}

// ObserveSim wires a simulator built outside newSim into the
// observability plane (tracer, engine probe, timeline, snapshot tick) —
// for benchmarks that construct sims and sites by hand.
func (o *Obs) ObserveSim(s *sim.Sim) { o.attachSim(s) }

// observeCluster registers a cluster for snapshot enumeration (called
// from NewSite).
func observeCluster(c *core.Cluster) {
	if obs != nil {
		obs.clusters = append(obs.clusters, c)
	}
}

// observeRunDone is called by run() the moment a simulator's event loop
// drains, freezing that run's engine window while its wall clock is
// still honest (a snapshot taken after later runs would charge their
// wall time to this window too).
func observeRunDone(s *sim.Sim) {
	if obs != nil {
		obs.captureEngine(s)
	}
}

func (o *Obs) captureEngine(s *sim.Sim) {
	p := s.EngineProbe()
	if p == nil || o.snapped[p] {
		return
	}
	o.snapped[p] = true
	o.engineSnaps = append(o.engineSnaps, p.Snapshot())
}

// EngineWindows returns every finished engine window so far — one per
// simulator run with a probe attached. Probes whose runs did not go
// through run() are snapshotted now.
func (o *Obs) EngineWindows() []sim.EngineSnapshot {
	for _, s := range o.sims {
		o.captureEngine(s)
	}
	return o.engineSnaps
}

// EngineSnapshot merges every engine window into one summary.
func (o *Obs) EngineSnapshot() sim.EngineSnapshot {
	return sim.MergeEngineSnapshots(o.EngineWindows())
}

// SolverStats merges the flow-solver counters across every observed
// network. Clusters sharing a network (multi-site sims) are counted
// once; enumeration order is the deterministic cluster registry.
func (o *Obs) SolverStats() netsim.SolverStats {
	var st netsim.SolverStats
	seen := map[*netsim.Network]bool{}
	for _, c := range o.clusters {
		if c.Net == nil || seen[c.Net] {
			continue
		}
		seen[c.Net] = true
		s := c.Net.SolverStats()
		st.Add(s)
	}
	return st
}

// WriteSolverReport prints the bottleneck-local rate solver's work:
// full vs local solves, how often the tolerance check expanded or a
// recompute escalated to the exact closure, and the log2 histogram of
// solved frontier sizes. Silent when no network ever solved (pure
// SAN/engine benchmarks).
func (o *Obs) WriteSolverReport(w io.Writer) {
	st := o.SolverStats()
	if st.Solves() == 0 && st.Placements == 0 {
		return
	}
	fmt.Fprintf(w, "rate solves: %d full, %d local, %d placements (%d periodic, %d escalations, %d expansions)\n",
		st.FullSolves, st.LocalSolves, st.Placements,
		st.PeriodicFulls, st.Escalations, st.Expansions)
	fmt.Fprintf(w, "  re-solved %d conns against %d boundary links held fixed\n",
		st.RegionConns, st.BoundaryLinks)
	fmt.Fprintf(w, "  frontier conns per solve:")
	for i, n := range st.FrontierHist {
		if n == 0 {
			continue
		}
		lo := 0
		if i > 0 {
			lo = 1 << (i - 1)
		}
		fmt.Fprintf(w, " [%d+]=%d", lo, n)
	}
	fmt.Fprintln(w)
}

// snapshotSim writes one mmpmon snapshot for the clusters living on s.
// With tracing on, the counters are followed by an op_lat section —
// per-op-type latency quantiles with critical-path phase percentages,
// derived from the events recorded so far.
func (o *Obs) snapshotSim(w io.Writer, s *sim.Sim) {
	var cs []*core.Cluster
	for _, c := range o.clusters {
		if c.Sim == s {
			cs = append(cs, c)
		}
	}
	core.WriteMmpmon(w, s, cs)
	if tl := o.tlBySim[s]; tl != nil && tl.Ticks() > 0 {
		core.WriteMmpmonRates(w, tl.Snapshot())
	}
	core.WriteMmpmonHists(w, o.Registry)
	if o.Agg != nil {
		o.Agg.Report().WriteOpLat(w)
	} else if o.Tracer != nil && o.Tracer.Len() > 0 {
		critpath.Analyze(o.Tracer).WriteOpLat(w)
	}
}

// Snapshot writes a final mmpmon snapshot for every simulator observed.
func (o *Obs) Snapshot(w io.Writer) {
	for _, s := range o.sims {
		o.snapshotSim(w, s)
	}
}
