package experiments

import (
	"io"

	"gfs/internal/core"
	"gfs/internal/critpath"
	"gfs/internal/metrics"
	"gfs/internal/netsim"
	"gfs/internal/sim"
	"gfs/internal/trace"
)

// ObsConfig selects what the observability layer collects while
// experiments run. Experiments build their own simulators inside Run, so
// the CLI cannot attach tracers directly; instead it installs a
// package-level hook with SetObservability and every simulator, network
// and cluster the experiments create is wired up as it is born.
type ObsConfig struct {
	// Trace collects virtual-time events for the Chrome/JSONL exporters.
	Trace bool
	// Stats attaches a metrics registry and enables mmpmon snapshots.
	Stats bool
	// Interval emits a live mmpmon snapshot to Out every so much
	// *simulated* time. Zero means no periodic snapshots (the caller can
	// still take a final one with Snapshot).
	Interval sim.Time
	// Out receives periodic snapshots; nil discards them.
	Out io.Writer

	// Engine attaches a sim.EngineProbe to every simulator: events/sec,
	// queue depth, per-kind wall attribution, allocations per event.
	Engine bool
	// EngineTraceEvery, with Engine and Trace on, emits one deterministic
	// engine/sample instant into the trace every so many fired events.
	EngineTraceEvery uint64

	// Bounded-memory tracing (all require Trace):
	// SampleOneIn keeps one operation in n via a deterministic hash of
	// the op ID (n <= 1 keeps everything).
	SampleOneIn uint64
	// Stream writes each kept event as a JSONL line immediately and
	// retains nothing, so trace memory stays O(1) in run length.
	Stream io.Writer
	// Ring retains only the last n events (0 = unbounded buffer).
	Ring int
	// Agg folds spans into an incremental critpath aggregate as they are
	// recorded. Without Stream or Ring the tracer is put in discard mode:
	// attribution with zero event retention.
	Agg bool
}

// Obs is the live state of one observed run: the shared tracer and
// registry plus every simulator and cluster created while it was
// installed.
type Obs struct {
	cfg      ObsConfig
	Tracer   *trace.Tracer
	Registry *metrics.Registry
	// Agg is the incremental critical-path aggregator (cfg.Agg only).
	Agg      *critpath.Agg
	sims     []*sim.Sim
	clusters []*core.Cluster

	// Engine telemetry: one probe per simulator, and one finished window
	// per run — captured the moment a run's event loop drains, so a
	// window's wall clock is not polluted by later runs in the same sweep.
	probes      []*sim.EngineProbe
	engineSnaps []sim.EngineSnapshot
	snapped     map[*sim.EngineProbe]bool
}

// obs is the installed hook; nil means observability is off and every
// instrumentation site degrades to a branch or two.
var obs *Obs

// SetObservability installs the observability hook for subsequent
// experiment runs (nil removes it). It returns the Obs whose Tracer,
// Registry and Snapshot carry the results.
func SetObservability(cfg *ObsConfig) *Obs {
	if cfg == nil {
		obs = nil
		return nil
	}
	o := &Obs{cfg: *cfg, snapped: map[*sim.EngineProbe]bool{}}
	if cfg.Trace {
		o.Tracer = trace.New()
		if cfg.SampleOneIn > 1 {
			o.Tracer.SetSampleOneIn(cfg.SampleOneIn)
		}
		if cfg.Agg {
			o.Agg = critpath.NewAgg()
			o.Tracer.SetObserver(o.Agg.Observe)
		}
		// Retention mode: streaming wins over ring; aggregate-only means
		// discard when nothing else wants the events retained.
		switch {
		case cfg.Stream != nil:
			o.Tracer.SetStream(cfg.Stream)
		case cfg.Ring > 0:
			o.Tracer.SetRing(cfg.Ring)
		case cfg.Agg:
			o.Tracer.SetDiscard()
		}
	}
	if cfg.Stats {
		o.Registry = metrics.NewRegistry()
	}
	obs = o
	return o
}

// Observability returns the installed hook, or nil.
func Observability() *Obs { return obs }

// newSim builds a simulator and, when observability is on, attaches the
// tracer and the periodic snapshot tick. All experiments create their
// simulators through this.
func newSim() *sim.Sim {
	s := sim.New()
	if obs != nil {
		obs.attachSim(s)
	}
	return s
}

// newNet builds a plain network on s, attaching the metrics registry.
func newNet(s *sim.Sim) *netsim.Network {
	nw := netsim.New(s)
	if obs != nil {
		nw.Metrics = obs.Registry
	}
	return nw
}

func (o *Obs) attachSim(s *sim.Sim) {
	o.sims = append(o.sims, s)
	if o.Tracer != nil {
		s.SetTracer(o.Tracer)
	}
	if o.cfg.Engine {
		p := sim.NewEngineProbe()
		if o.Tracer != nil {
			p.TraceSampleEvery = o.cfg.EngineTraceEvery
		}
		s.SetEngineProbe(p)
		o.probes = append(o.probes, p)
	}
	if o.cfg.Stats && o.cfg.Interval > 0 && o.cfg.Out != nil {
		var tick func()
		tick = func() {
			o.snapshotSim(o.cfg.Out, s)
			// Only reschedule while other work is pending, so the tick
			// never keeps Run from draining.
			if s.Pending() > 0 {
				s.At(s.Now()+o.cfg.Interval, tick)
			}
		}
		s.At(o.cfg.Interval, tick)
	}
}

// observeCluster registers a cluster for snapshot enumeration (called
// from NewSite).
func observeCluster(c *core.Cluster) {
	if obs != nil {
		obs.clusters = append(obs.clusters, c)
	}
}

// observeRunDone is called by run() the moment a simulator's event loop
// drains, freezing that run's engine window while its wall clock is
// still honest (a snapshot taken after later runs would charge their
// wall time to this window too).
func observeRunDone(s *sim.Sim) {
	if obs != nil {
		obs.captureEngine(s)
	}
}

func (o *Obs) captureEngine(s *sim.Sim) {
	p := s.EngineProbe()
	if p == nil || o.snapped[p] {
		return
	}
	o.snapped[p] = true
	o.engineSnaps = append(o.engineSnaps, p.Snapshot())
}

// EngineWindows returns every finished engine window so far — one per
// simulator run with a probe attached. Probes whose runs did not go
// through run() are snapshotted now.
func (o *Obs) EngineWindows() []sim.EngineSnapshot {
	for _, s := range o.sims {
		o.captureEngine(s)
	}
	return o.engineSnaps
}

// EngineSnapshot merges every engine window into one summary.
func (o *Obs) EngineSnapshot() sim.EngineSnapshot {
	return sim.MergeEngineSnapshots(o.EngineWindows())
}

// snapshotSim writes one mmpmon snapshot for the clusters living on s.
// With tracing on, the counters are followed by an op_lat section —
// per-op-type latency quantiles with critical-path phase percentages,
// derived from the events recorded so far.
func (o *Obs) snapshotSim(w io.Writer, s *sim.Sim) {
	var cs []*core.Cluster
	for _, c := range o.clusters {
		if c.Sim == s {
			cs = append(cs, c)
		}
	}
	core.WriteMmpmon(w, s, cs)
	core.WriteMmpmonHists(w, o.Registry)
	if o.Agg != nil {
		o.Agg.Report().WriteOpLat(w)
	} else if o.Tracer != nil && o.Tracer.Len() > 0 {
		critpath.Analyze(o.Tracer).WriteOpLat(w)
	}
}

// Snapshot writes a final mmpmon snapshot for every simulator observed.
func (o *Obs) Snapshot(w io.Writer) {
	for _, s := range o.sims {
		o.snapshotSim(w, s)
	}
}
