package experiments

import (
	"io"

	"gfs/internal/core"
	"gfs/internal/critpath"
	"gfs/internal/metrics"
	"gfs/internal/netsim"
	"gfs/internal/sim"
	"gfs/internal/trace"
)

// ObsConfig selects what the observability layer collects while
// experiments run. Experiments build their own simulators inside Run, so
// the CLI cannot attach tracers directly; instead it installs a
// package-level hook with SetObservability and every simulator, network
// and cluster the experiments create is wired up as it is born.
type ObsConfig struct {
	// Trace collects virtual-time events for the Chrome/JSONL exporters.
	Trace bool
	// Stats attaches a metrics registry and enables mmpmon snapshots.
	Stats bool
	// Interval emits a live mmpmon snapshot to Out every so much
	// *simulated* time. Zero means no periodic snapshots (the caller can
	// still take a final one with Snapshot).
	Interval sim.Time
	// Out receives periodic snapshots; nil discards them.
	Out io.Writer
}

// Obs is the live state of one observed run: the shared tracer and
// registry plus every simulator and cluster created while it was
// installed.
type Obs struct {
	cfg      ObsConfig
	Tracer   *trace.Tracer
	Registry *metrics.Registry
	sims     []*sim.Sim
	clusters []*core.Cluster
}

// obs is the installed hook; nil means observability is off and every
// instrumentation site degrades to a branch or two.
var obs *Obs

// SetObservability installs the observability hook for subsequent
// experiment runs (nil removes it). It returns the Obs whose Tracer,
// Registry and Snapshot carry the results.
func SetObservability(cfg *ObsConfig) *Obs {
	if cfg == nil {
		obs = nil
		return nil
	}
	o := &Obs{cfg: *cfg}
	if cfg.Trace {
		o.Tracer = trace.New()
	}
	if cfg.Stats {
		o.Registry = metrics.NewRegistry()
	}
	obs = o
	return o
}

// Observability returns the installed hook, or nil.
func Observability() *Obs { return obs }

// newSim builds a simulator and, when observability is on, attaches the
// tracer and the periodic snapshot tick. All experiments create their
// simulators through this.
func newSim() *sim.Sim {
	s := sim.New()
	if obs != nil {
		obs.attachSim(s)
	}
	return s
}

// newNet builds a plain network on s, attaching the metrics registry.
func newNet(s *sim.Sim) *netsim.Network {
	nw := netsim.New(s)
	if obs != nil {
		nw.Metrics = obs.Registry
	}
	return nw
}

func (o *Obs) attachSim(s *sim.Sim) {
	o.sims = append(o.sims, s)
	if o.Tracer != nil {
		s.SetTracer(o.Tracer)
	}
	if o.cfg.Stats && o.cfg.Interval > 0 && o.cfg.Out != nil {
		var tick func()
		tick = func() {
			o.snapshotSim(o.cfg.Out, s)
			// Only reschedule while other work is pending, so the tick
			// never keeps Run from draining.
			if s.Pending() > 0 {
				s.At(s.Now()+o.cfg.Interval, tick)
			}
		}
		s.At(o.cfg.Interval, tick)
	}
}

// observeCluster registers a cluster for snapshot enumeration (called
// from NewSite).
func observeCluster(c *core.Cluster) {
	if obs != nil {
		obs.clusters = append(obs.clusters, c)
	}
}

// snapshotSim writes one mmpmon snapshot for the clusters living on s.
// With tracing on, the counters are followed by an op_lat section —
// per-op-type latency quantiles with critical-path phase percentages,
// derived from the events recorded so far.
func (o *Obs) snapshotSim(w io.Writer, s *sim.Sim) {
	var cs []*core.Cluster
	for _, c := range o.clusters {
		if c.Sim == s {
			cs = append(cs, c)
		}
	}
	core.WriteMmpmon(w, s, cs)
	if o.Tracer != nil && o.Tracer.Len() > 0 {
		critpath.Analyze(o.Tracer).WriteOpLat(w)
	}
}

// Snapshot writes a final mmpmon snapshot for every simulator observed.
func (o *Obs) Snapshot(w io.Writer) {
	for _, s := range o.sims {
		o.snapshotSim(w, s)
	}
}
