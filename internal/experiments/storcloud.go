package experiments

import (
	"fmt"

	"gfs/internal/disk"
	"gfs/internal/netsim"
	"gfs/internal/san"
	"gfs/internal/sim"
	"gfs/internal/units"
)

// StorCloudConfig parameterizes the SC'04 show-floor local rate check.
type StorCloudConfig struct {
	Servers   int // 40 IA64 servers
	HBAsPer   int // 3 x 2 Gb/s FC HBAs each (120 links to StorCloud)
	Arrays    int
	ArrayCfg  san.ArrayConfig
	PerServer units.Bytes // bytes each server streams
	IOSize    units.Bytes
}

// DefaultStorCloudConfig approximates the ~160 TB StorCloud loaner pool:
// 30 enclosures of 28 drives (three 8+P sets + spare) with dual 2 Gb/s
// controllers.
func DefaultStorCloudConfig() StorCloudConfig {
	return StorCloudConfig{
		Servers: 40,
		HBAsPer: 3,
		Arrays:  30,
		ArrayCfg: san.ArrayConfig{
			Sets: 3, MembersPer: 9, Spares: 1, StripeUnit: 256 * units.KiB,
			Drive: disk.SATA250(), CtrlRate: san.FC2, CtrlStreams: 6,
		},
		PerServer: 8 * units.GiB,
		IOSize:    8 * units.MiB,
	}
}

// RunStorCloudLocal regenerates the §4 headline: "approximately 15 GB/s
// was obtained in file system transfer rates on the show floor" against a
// 30 GB/s theoretical disk-to-server aggregate.
func RunStorCloudLocal(cfg StorCloudConfig) *Result {
	res := NewResult("E3b", "SC'04 StorCloud local transfer rate, 40 servers x 3 FC HBAs")
	s := newSim()
	nw := newNet(s)
	nw.MinRecomputeInterval = 100 * sim.Microsecond
	nw.DefaultTCP = netsim.TCPConfig{} // all FC, credit flow control
	f := san.NewFabric(s, nw)
	sw := f.Switch("storcloud")

	var arrays []*san.Array
	for i := 0; i < cfg.Arrays; i++ {
		arrays = append(arrays, f.NewArray(fmt.Sprintf("sc%02d", i), sw, cfg.ArrayCfg))
	}
	var eps []*netsim.Endpoint
	for i := 0; i < cfg.Servers; i++ {
		node := nw.NewNode(fmt.Sprintf("ia64-%02d", i))
		f.AttachHBA(node, sw, san.FC2, cfg.HBAsPer)
		eps = append(eps, nw.NewEndpoint(node, cfg.HBAsPer*2))
	}

	var moved units.Bytes
	var elapsed sim.Time
	run(s, func(p *sim.Proc) error {
		wg := sim.NewWaitGroup(s)
		var firstErr error
		t0 := p.Now()
		for i, ep := range eps {
			i, ep := i, ep
			wg.Add(1)
			s.Go("stream", func(sp *sim.Proc) {
				defer wg.Done()
				// Stripe across arrays and LUNs, GPFS-style, so no single
				// controller pins the server's three HBAs.
				window := sim.NewResource(s, "w", 12)
				inner := sim.NewWaitGroup(s)
				j := 0
				for off := units.Bytes(0); off < cfg.PerServer; off += cfg.IOSize {
					arr := arrays[(i+j)%len(arrays)]
					lun := ((i + j) / len(arrays)) % len(arr.Sets)
					window.Acquire(sp, 1)
					inner.Add(1)
					lunOff := (units.Bytes(j) * cfg.IOSize) % (arr.Sets[lun].Capacity() - cfg.IOSize)
					arr.GoReadLUN(ep, sp.Ctx(), lun, lunOff, cfg.IOSize, func(err error) {
						if err != nil && firstErr == nil {
							firstErr = err
						}
						moved += cfg.IOSize
						window.Release(1)
						inner.Done()
					})
					j++
				}
				inner.Wait(sp)
			})
		}
		wg.Wait(p)
		elapsed = p.Now() - t0
		return firstErr
	})

	rate := float64(moved) / elapsed.Seconds()
	res.Headline["aggregate GB/s"] = rate / 1e9
	res.Headline["theoretical GB/s"] = float64(cfg.Servers*cfg.HBAsPer) * 2e9 / 8 / 1e9 // 120 x 2 Gb/s
	res.Headline["controller cap GB/s"] = float64(cfg.Arrays) * 2 * 2e9 / 8 / 1e9
	res.Note("paper: ~15 GB/s obtained of ~30 GB/s theoretical between StorCloud disks and booth servers")
	return res
}
