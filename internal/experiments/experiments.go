// Package experiments reconstructs every quantitative artifact of the
// paper — Figures 2, 5, 8 and 11 plus the headline deployment numbers
// (SC'04 StorCloud local rate, ANL remote mount, DEISA core sites, the
// GFS-vs-GridFTP paradigm comparison and the HSM future-work scenario) —
// on top of the simulation substrates. Each Run* function builds the
// generation-appropriate topology, drives the paper's workload, and
// returns series/headlines; cmd/gfssim and the benchmark harness print
// them.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"gfs/internal/metrics"
)

// Result is one experiment's output.
type Result struct {
	ID       string
	Title    string
	Series   []*metrics.Series
	Headline map[string]float64
	Notes    []string
}

// NewResult initializes an empty result.
func NewResult(id, title string) *Result {
	return &Result{ID: id, Title: title, Headline: map[string]float64{}}
}

// Add attaches a series.
func (r *Result) Add(s *metrics.Series) { r.Series = append(r.Series, s) }

// Note records a free-form observation.
func (r *Result) Note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// HeadlineTable renders the named scalars as an aligned table, keys
// sorted.
func (r *Result) HeadlineTable() string {
	keys := make([]string, 0, len(r.Headline))
	for k := range r.Headline {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	rows := make([][]string, 0, len(keys))
	for _, k := range keys {
		rows = append(rows, []string{k, fmt.Sprintf("%.2f", r.Headline[k])})
	}
	return metrics.Table([]string{"metric", "value"}, rows)
}

// String renders the full result: headline table, notes, and an ASCII
// chart per series group.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	b.WriteString(r.HeadlineTable())
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	if len(r.Series) > 0 {
		ch := metrics.NewChart(r.Title)
		for _, s := range r.Series {
			ch.Add(s)
		}
		b.WriteString(ch.Render())
	}
	return b.String()
}

// Runner is a registered experiment.
type Runner struct {
	Name  string
	Paper string // which figure/table/section it regenerates
	Run   func() *Result
}

// All returns the experiment registry in presentation order.
func All() []Runner {
	return []Runner{
		{"sc02", "Fig. 2 — SC'02 FCIP read from the show floor", func() *Result { return RunSC02(DefaultSC02Config()) }},
		{"sc03", "Fig. 5 — SC'03 native WAN-GPFS bandwidth", func() *Result { return RunSC03(DefaultSC03Config()) }},
		{"sc04", "Fig. 8 — SC'04 multi-cluster transfer rates", func() *Result { return RunSC04(DefaultSC04Config()) }},
		{"storcloud", "§4 — SC'04 local StorCloud file system rate", func() *Result { return RunStorCloudLocal(DefaultStorCloudConfig()) }},
		{"production", "Fig. 11 — 2005 production scaling, reads and writes", func() *Result { return RunProductionScaling(DefaultProductionConfig()) }},
		{"anl", "§5 — ANL remote mount, 32 nodes", func() *Result { return RunANL(DefaultANLConfig()) }},
		{"deisa", "§7 — DEISA core-site MC-GPFS", func() *Result { return RunDEISA(DefaultDEISAConfig()) }},
		{"paradigm", "§1/§8 — direct GFS access vs GridFTP movement", func() *Result { return RunParadigm(DefaultParadigmConfig()) }},
		{"hsm", "§8 — HSM migration and recall", func() *Result { return RunHSM(DefaultHSMConfig()) }},
		{"cache", "§8 — automatic edge caching over a copyright library", func() *Result { return RunCache(DefaultCacheConfig()) }},
		{"failover", "Fig. 5 / §3 — dip-and-recovery under an injected NSD server crash", func() *Result { return RunFailover(DefaultFailoverConfig()) }},
		{"metastorm", "§6 — metadata storm over the sharded token/metadata plane", func() *Result { return RunMetastorm(DefaultMetastormConfig()) }},
	}
}

// ByName finds a registered experiment.
func ByName(name string) (Runner, bool) {
	for _, r := range All() {
		if r.Name == name {
			return r, true
		}
	}
	return Runner{}, false
}
