package experiments

import (
	"fmt"

	"gfs/internal/core"
	"gfs/internal/metrics"
	"gfs/internal/sim"
	"gfs/internal/units"
)

// MetastormConfig sizes the metadata-storm experiment: the NorduGrid
// small-file pattern (§6) that a single token/metadata manager serves
// one RPC at a time, and that the sharded plane exists to spread out.
type MetastormConfig struct {
	Servers   int         // NSD servers (shard homes)
	Clients   int         // concurrent metadata-storm clients
	Cycles    int         // create/write/stat/remove cycles per client
	FileSize  units.Bytes // payload per file — small, the point of the storm
	BlockSize units.Bytes
	Shards    []int // arms: token-shard counts (0 = central manager only)
}

// DefaultMetastormConfig keeps the storm small enough for CI while
// leaving the single manager clearly wire-bound: hundreds of clients
// funneling ~200-byte metadata RPCs into one GbE NIC.
func DefaultMetastormConfig() MetastormConfig {
	return MetastormConfig{
		Servers:   8,
		Clients:   256,
		Cycles:    30,
		FileSize:  units.KiB,
		BlockSize: 256 * units.KiB,
		Shards:    []int{0, 4, 8},
	}
}

// RunMetastorm drives the create/stat/remove storm against each arm and
// reports aggregate metadata ops/sec plus the share of virtual time the
// storm spent blocked inside metadata RPCs (client-observed manager
// queue + wire wait — the critical-path term sharding attacks). Full
// per-phase attribution is available by running the experiment under
// -attr; the headline share is the storm's own bookkeeping and needs no
// tracer.
func RunMetastorm(cfg MetastormConfig) *Result {
	res := NewResult("E9", "Metadata storm: sharded token/metadata plane vs central manager")
	opsSer := &metrics.Series{Name: "meta ops/s", XLabel: "token shards", YLabel: "ops/s"}
	waitSer := &metrics.Series{Name: "meta wait share", XLabel: "token shards", YLabel: "fraction"}

	var baseline float64
	for _, shards := range cfg.Shards {
		ops, waitShare := runMetastormArm(cfg, shards)
		opsSer.Add(float64(shards), ops)
		waitSer.Add(float64(shards), waitShare)
		res.Headline[fmt.Sprintf("ops/s @%d shards", shards)] = ops
		res.Headline[fmt.Sprintf("meta wait share @%d shards", shards)] = waitShare
		if shards == 0 {
			baseline = ops
		} else if baseline > 0 {
			res.Headline[fmt.Sprintf("speedup @%d shards", shards)] = ops / baseline
		}
	}
	res.Add(opsSer)
	res.Add(waitSer)
	res.Note("%d clients x %d cycles of create/write(%s)/stat/remove in one striped directory",
		cfg.Clients, cfg.Cycles, cfg.FileSize)
	res.Note("single manager serializes ~200-byte metadata RPCs on one GbE NIC; shards ride the NSD servers' NICs")
	return res
}

// runMetastormArm runs one arm and returns (metadata ops/sec, fraction
// of client-time blocked in metadata RPCs).
func runMetastormArm(cfg MetastormConfig, shards int) (float64, float64) {
	s := newSim()
	nw := newEthernetNet(s)
	site := NewSite(s, nw, "storm")
	site.BuildFS(FSOptions{
		Name: "gpfs-meta", BlockSize: cfg.BlockSize,
		Servers: cfg.Servers, ServerEth: units.Gbps,
		StoreRate: 400 * units.MBps, StoreCap: 100 * units.GB, StoreStreams: 8,
	})
	site.FS.SetTokenShards(shards)

	ccfg := core.DefaultClientConfig()
	clients := site.AddClients(cfg.Clients, units.Gbps, ccfg)

	var elapsed sim.Time
	var metaWait sim.Time
	run(s, func(p *sim.Proc) error {
		mounts, err := MountAll(p, clients, site.FS, "")
		if err != nil {
			return err
		}
		if err := mounts[0].Mkdir(p, "/storm"); err != nil {
			return err
		}
		if err := mounts[0].Chmod(p, "/storm", core.DefaultPerm|core.WorldWrite); err != nil {
			return err
		}
		t0 := p.Now()
		wg := sim.NewWaitGroup(s)
		var firstErr error
		for i, m := range mounts {
			i, m := i, m
			wg.Add(1)
			s.Go(fmt.Sprintf("storm-c%d", i), func(cp *sim.Proc) {
				defer wg.Done()
				// Deterministic stagger so the clients do not tick in
				// lockstep (no RNG: the arm must be byte-reproducible).
				cp.Sleep(sim.Time(i) * 17 * sim.Microsecond)
				for c := 0; c < cfg.Cycles; c++ {
					// Full-path hashing stripes this one directory's storm
					// across every shard.
					path := fmt.Sprintf("/storm/c%03d-f%04d", i, c)
					mt0 := cp.Now()
					f, err := m.Create(cp, path, core.DefaultPerm)
					metaWait += cp.Now() - mt0
					if err != nil {
						if firstErr == nil {
							firstErr = err
						}
						return
					}
					if err := f.WriteAt(cp, 0, cfg.FileSize); err != nil {
						if firstErr == nil {
							firstErr = err
						}
						return
					}
					if err := f.Close(cp); err != nil {
						if firstErr == nil {
							firstErr = err
						}
						return
					}
					mt0 = cp.Now()
					if _, err := m.Stat(cp, path); err != nil {
						if firstErr == nil {
							firstErr = err
						}
						return
					}
					if err := m.Remove(cp, path); err != nil {
						if firstErr == nil {
							firstErr = err
						}
						return
					}
					metaWait += cp.Now() - mt0
				}
			})
		}
		wg.Wait(p)
		elapsed = p.Now() - t0
		return firstErr
	})
	if elapsed <= 0 {
		return 0, 0
	}
	totalOps := float64(cfg.Clients) * float64(cfg.Cycles) * 3 // create+stat+remove
	share := float64(metaWait) / (float64(elapsed) * float64(cfg.Clients))
	return totalOps / elapsed.Seconds(), share
}
