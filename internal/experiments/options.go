package experiments

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"gfs/internal/sim"
	"gfs/internal/units"
)

// Options is the shared command-line surface of the gfssim and gfsbench
// binaries. Each Register* method registers one coherent group of flags
// onto a FlagSet with identical names, defaults and help text; both
// binaries assemble their CLIs from these groups, so a knob added here
// shows up in every binary that registers the group and the two cannot
// drift apart. Flags a binary does not register simply leave the zero
// value in place.
type Options struct {
	// Engine plane (RegisterEngine).
	Scheduler      string  // event-queue implementation: "calendar" (default) or "heap"
	EngineStats    bool    // print engine telemetry after the runs
	SolveTolerance float64 // bottleneck-local rate solves (0 = exact, byte-identical)

	// Trace retention and sampling (RegisterTrace).
	TraceOut    string        // Chrome trace-event JSON path
	JSONLOut    string        // raw JSONL trace path
	Stats       bool          // mmpmon snapshot + metrics registry
	Interval    time.Duration // periodic live snapshots, simulated time
	Attr        bool          // batch critical-path attribution
	AttrAgg     bool          // incremental attribution, zero retention
	JSONLStream string        // stream JSONL as events happen (O(1) memory)
	TraceSample uint64        // keep one traced op in N
	TraceRing   int           // retain only the last N trace events

	// Timeline plane (RegisterTimeline).
	TimelineJSONL    string
	TimelineInterval time.Duration
	TimelineRing     int
	HTTPAddr         string
	HTTPHold         time.Duration

	// Workload shape (RegisterWorkload).
	Nodes string // comma-separated node counts
	Size  string // bytes moved per client node, e.g. "64MiB"

	// Experiment tuning overrides (RegisterTuning; gfssim only).
	Depth       int
	Block       int64
	FileSize    int64
	CrashAt     time.Duration
	Outage      time.Duration
	Duration    time.Duration
	RADepth     int
	WBDirty     int
	Gather      bool
	WideTok     bool
	TokenShards int

	// Profiling (RegisterProfiles).
	CPUProfile string
	MemProfile string
}

// RegisterEngine registers the engine-plane flags: scheduler selection
// and engine telemetry.
func (o *Options) RegisterEngine(fs *flag.FlagSet) {
	fs.StringVar(&o.Scheduler, "scheduler", "",
		"event-queue scheduler: calendar (default) or heap")
	fs.BoolVar(&o.EngineStats, "engine-stats", false,
		"print engine-plane telemetry (events/sec, queue depth, per-kind wall attribution)")
	fs.Float64Var(&o.SolveTolerance, "solve-tolerance", 0,
		"bottleneck-local rate solves: re-solve only conns whose boundary load shifts past this fraction of link capacity (0 = exact closure, byte-identical)")
}

// RegisterTrace registers the trace/attribution/snapshot flags.
func (o *Options) RegisterTrace(fs *flag.FlagSet) {
	fs.StringVar(&o.TraceOut, "trace", "",
		"write a Chrome trace-event JSON file (chrome://tracing, Perfetto)")
	fs.StringVar(&o.JSONLOut, "jsonl", "",
		"write raw trace events as JSON lines")
	fs.BoolVar(&o.Stats, "stats", false,
		"print an mmpmon-style snapshot and the metrics registry after each run")
	fs.DurationVar(&o.Interval, "interval", 0,
		"also print live mmpmon snapshots every so much simulated time (e.g. 5s)")
	fs.BoolVar(&o.Attr, "attr", false,
		"print a critical-path latency attribution report per experiment")
	fs.BoolVar(&o.AttrAgg, "attr-agg", false,
		"critical-path attribution computed incrementally with zero event retention")
	fs.StringVar(&o.JSONLStream, "jsonl-stream", "",
		"stream trace events to this JSONL file as they happen (O(1) trace memory)")
	fs.Uint64Var(&o.TraceSample, "trace-sample", 0,
		"keep one traced operation in N (deterministic hash of the op ID; 0/1 keeps all)")
	fs.IntVar(&o.TraceRing, "trace-ring", 0,
		"retain only the last N trace events (ring buffer)")
}

// RegisterTimeline registers the timeline-plane flags.
func (o *Options) RegisterTimeline(fs *flag.FlagSet) {
	fs.StringVar(&o.TimelineJSONL, "timeline-jsonl", "",
		"stream per-interval resource rate series (timeline windows) to this JSONL file")
	fs.DurationVar(&o.TimelineInterval, "timeline-interval", time.Second,
		"timeline sampling interval in simulated time")
	fs.IntVar(&o.TimelineRing, "timeline-ring", 0,
		"retain only the last N timeline windows per series (bounded memory; enables the timeline plane)")
	fs.StringVar(&o.HTTPAddr, "http", "",
		"serve live timeline telemetry on this address: Prometheus text on /metrics, JSON history on /timeline")
	fs.DurationVar(&o.HTTPHold, "http-hold", 0,
		"keep the -http exporter serving this long (wall time) after the runs finish")
}

// RegisterWorkload registers the workload-shape flags shared by the
// production experiment and the sweeps.
func (o *Options) RegisterWorkload(fs *flag.FlagSet) {
	fs.StringVar(&o.Nodes, "nodes", "",
		"override node counts, comma-separated (e.g. 64,256,1024)")
	fs.StringVar(&o.Size, "size", "",
		"override bytes moved per client node (e.g. 64MiB)")
}

// RegisterTuning registers the per-experiment override flags.
func (o *Options) RegisterTuning(fs *flag.FlagSet) {
	fs.IntVar(&o.Depth, "depth", 0,
		"sc02 only: override the SANergy pipeline depth (outstanding block requests)")
	fs.Int64Var(&o.Block, "block", 0,
		"sc02 only: override the block size in bytes")
	fs.Int64Var(&o.FileSize, "filesize", 0,
		"sc02 only: override the file size in bytes")
	fs.DurationVar(&o.CrashAt, "crash", 0,
		"failover only: override when the NSD server dies (e.g. 6s)")
	fs.DurationVar(&o.Outage, "outage", 0,
		"failover only: override how long the server stays dead")
	fs.DurationVar(&o.Duration, "duration", 0,
		"failover only: override the total reader run time")
	fs.IntVar(&o.RADepth, "ra-depth", 0,
		"sc03/failover: override the client readahead depth in blocks")
	fs.IntVar(&o.WBDirty, "wb-max-dirty", 0,
		"sc03/failover: override the client write-behind dirty-page limit")
	fs.BoolVar(&o.Gather, "gather", false,
		"production only: stripe-aligned flush gathering, NSD batching and elevator")
	fs.BoolVar(&o.WideTok, "wide-tokens", false,
		"production only: opportunistic wide token grants")
	fs.IntVar(&o.TokenShards, "token-shards", -1,
		"metastorm only: run a single arm with this many token shards (0 = central manager)")
}

// RegisterProfiles registers the pprof output flags.
func (o *Options) RegisterProfiles(fs *flag.FlagSet) {
	fs.StringVar(&o.CPUProfile, "cpuprofile", "",
		"write a pprof CPU profile of the process to this file")
	fs.StringVar(&o.MemProfile, "memprofile", "",
		"write a pprof heap profile (post-run, after GC) to this file")
}

// Validate checks cross-flag consistency — the rules that hold whichever
// binary parsed the flags — and installs the scheduler choice so every
// simulator built through this package uses it.
func (o *Options) Validate() error {
	if err := SetScheduler(o.Scheduler); err != nil {
		return err
	}
	if err := SetSolveTolerance(o.SolveTolerance); err != nil {
		return err
	}
	if o.JSONLStream != "" && (o.TraceOut != "" || o.JSONLOut != "" || o.TraceRing > 0) {
		return fmt.Errorf("-jsonl-stream retains nothing; it cannot combine with -trace/-jsonl/-trace-ring")
	}
	if o.Attr && o.AttrAgg {
		return fmt.Errorf("pick one of -attr (batch, retains the trace) or -attr-agg (incremental, retains nothing)")
	}
	return nil
}

// NodeCounts parses the -nodes list, falling back to def when the flag
// was not given.
func (o *Options) NodeCounts(def []int) ([]int, error) {
	if o.Nodes == "" {
		return def, nil
	}
	var out []int
	for _, ns := range strings.Split(o.Nodes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(ns))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad node count %q", ns)
		}
		out = append(out, n)
	}
	return out, nil
}

// SizeBytes parses -size; zero means the flag was not given.
func (o *Options) SizeBytes() (units.Bytes, error) {
	if o.Size == "" {
		return 0, nil
	}
	return units.ParseBytes(o.Size)
}

// NeedTrace reports whether any requested output requires a tracer.
func (o *Options) NeedTrace() bool {
	return o.TraceOut != "" || o.JSONLOut != "" || o.Attr || o.AttrAgg ||
		o.JSONLStream != "" || o.TraceSample > 1 || o.TraceRing > 0
}

// NeedTimeline reports whether any requested output requires the
// timeline plane.
func (o *Options) NeedTimeline() bool {
	return o.TimelineJSONL != "" || o.HTTPAddr != "" || o.TimelineRing > 0
}

// NeedObs reports whether any observability at all was requested.
func (o *Options) NeedObs() bool {
	return o.NeedTrace() || o.NeedTimeline() || o.Stats || o.Interval > 0 || o.EngineStats
}

// ObsConfig translates the parsed flags into the observability
// configuration, with out receiving periodic snapshots. Writers that
// need opened files (-jsonl-stream, -timeline-jsonl) and the HTTP
// exporter are left nil for the caller to fill in.
func (o *Options) ObsConfig(out io.Writer) ObsConfig {
	cfg := ObsConfig{
		Trace:       o.NeedTrace(),
		Stats:       o.Stats || o.Interval > 0,
		Interval:    sim.Time(o.Interval / time.Nanosecond),
		Out:         out,
		Engine:      o.EngineStats,
		SampleOneIn: o.TraceSample,
		Ring:        o.TraceRing,
		Agg:         o.AttrAgg,
	}
	if cfg.Engine && cfg.Trace {
		// One deterministic engine/sample instant every 4096 events:
		// enough timeline for gfsprof -engine, negligible trace volume.
		cfg.EngineTraceEvery = 4096
	}
	if o.NeedTimeline() {
		cfg.Timeline = true
		cfg.TimelineInterval = sim.Time(o.TimelineInterval / time.Nanosecond)
		cfg.TimelineRing = o.TimelineRing
	}
	return cfg
}

// StartCPUProfile begins the CPU profile when -cpuprofile was given.
// The returned stop function is safe to defer unconditionally.
func (o *Options) StartCPUProfile() (func(), error) {
	if o.CPUProfile == "" {
		return func() {}, nil
	}
	f, err := os.Create(o.CPUProfile)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteMemProfile writes the post-run heap profile when -memprofile was
// given, after a full GC so the profile shows live retention.
func (o *Options) WriteMemProfile() error {
	if o.MemProfile == "" {
		return nil
	}
	runtime.GC()
	f, err := os.Create(o.MemProfile)
	if err != nil {
		return err
	}
	err = pprof.WriteHeapProfile(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// schedName is the installed scheduler choice ("" = package default,
// the calendar queue). Every simulator built through this package —
// newSim inside experiments, NewSim from benchmarks — draws a fresh
// scheduler of this flavor.
var schedName string

// SetScheduler installs the event-queue scheduler used by every
// subsequently built simulator. Valid names are "" or "calendar" for
// the calendar queue and "heap" for the binary heap; anything else is
// an error and leaves the current choice in place.
func SetScheduler(name string) error {
	if _, err := sim.NewScheduler(name); err != nil {
		return err
	}
	schedName = name
	return nil
}

// SchedulerName returns the installed scheduler choice ("" = calendar).
func SchedulerName() string { return schedName }

// solveTol is the installed rate-solver tolerance. Every network built
// through this package (newNet inside experiments, benchmark sites built
// over NewSim's networks via the topo helpers) gets it applied.
var solveTol float64

// SetSolveTolerance installs the bottleneck-local solve tolerance used by
// every subsequently built network. 0 keeps the exact closure solver
// (byte-identical to prior releases); a fraction in (0, 1) lets local
// solves stop at links whose load shifts by less than that fraction of
// capacity. Out-of-range values are an error and leave the current choice
// in place.
func SetSolveTolerance(t float64) error {
	if t < 0 || t >= 1 {
		return fmt.Errorf("solve tolerance %g out of range [0, 1)", t)
	}
	solveTol = t
	return nil
}

// SolveToleranceValue returns the installed solve tolerance.
func SolveToleranceValue() float64 { return solveTol }

// NewSim builds a simulator with the installed scheduler and, when
// observability is on, attaches the tracer, engine probe, timeline and
// snapshot tick — the constructor for benchmarks that build their own
// sites by hand. Experiments inside this package use it via newSim.
func NewSim() *sim.Sim {
	return newSim()
}
