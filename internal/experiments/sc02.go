package experiments

import (
	"gfs/internal/disk"
	"gfs/internal/fcip"
	"gfs/internal/metrics"
	"gfs/internal/netsim"
	"gfs/internal/san"
	"gfs/internal/sim"
	"gfs/internal/units"
)

// SC02Config parameterizes the Fig. 2 reproduction.
type SC02Config struct {
	Tunnel    fcip.TunnelConfig
	Arrays    int         // QFS disk arrays at SDSC
	FileSize  units.Bytes // data read by the show-floor host
	BlockSize units.Bytes
	Depth     int // outstanding block requests (SANergy pipelining)
	Interval  sim.Time
}

// DefaultSC02Config mirrors the SC'02 demonstration, scaled so the run
// covers ~60 virtual seconds.
func DefaultSC02Config() SC02Config {
	return SC02Config{
		Tunnel:    fcip.DefaultTunnelConfig(),
		Arrays:    4,
		FileSize:  45 * units.GB,
		BlockSize: 8 * units.MiB,
		Depth:     64,
		Interval:  sim.Second,
	}
}

// RunSC02 regenerates Fig. 2: read MB/s versus time from the SDSC QFS
// across the FCIP-extended SAN to the Baltimore show floor, 80 ms RTT.
func RunSC02(cfg SC02Config) *Result {
	res := NewResult("E1/Fig2", "SC'02 GFS read performance, SDSC to Baltimore over FCIP")
	s := newSim()
	nw := newNet(s)
	nw.MinRecomputeInterval = 100 * sim.Microsecond
	nw.DefaultTCP = netsim.TCPConfig{} // FC credit flow control, no TCP window
	f := san.NewFabric(s, nw)
	swSDSC := f.Switch("sdsc")
	swShow := f.Switch("baltimore")
	tun := fcip.NewTunnel(f, "nishan", swSDSC, swShow, cfg.Tunnel)

	arrCfg := san.ArrayConfig{
		Sets: 4, MembersPer: 9, Spares: 1, StripeUnit: 256 * units.KiB,
		Drive: disk.FC73(), CtrlRate: san.FC2, CtrlStreams: 4,
	}
	var arrays []*san.Array
	for i := 0; i < cfg.Arrays; i++ {
		arrays = append(arrays, f.NewArray("qfs", swSDSC, arrCfg))
	}
	metaNode := nw.NewNode("sun-f15k")
	f.AttachHBA(metaNode, swSDSC, san.FC2, 1)
	meta := fcip.NewFileServer(f, metaNode, arrays)
	host := nw.NewNode("sf6800")
	f.AttachHBA(host, swShow, san.FC2, 4)
	client := fcip.NewClient(f, host, meta, 8)

	// Monitor the eastbound tunnel channels and aggregate them.
	var mons []*metrics.RateMonitor
	for _, l := range tun.EastboundLinks() {
		m := metrics.NewRateMonitor(s, l.Name(), cfg.Interval)
		l.Monitor = m
		mons = append(mons, m)
	}

	run(s, func(p *sim.Proc) error {
		if err := client.Create(p, "/enzo.dump", cfg.FileSize); err != nil {
			return err
		}
		return client.ReadFile(p, "/enzo.dump", cfg.BlockSize, cfg.Depth)
	})

	agg := &metrics.Series{Name: "Read", XLabel: "time (s)", YLabel: "MB/s"}
	parts := make([]*metrics.Series, len(mons))
	maxLen := 0
	for i, m := range mons {
		parts[i] = m.SeriesMBps()
		if parts[i].Len() > maxLen {
			maxLen = parts[i].Len()
		}
	}
	var peak float64
	for i := 0; i < maxLen; i++ {
		sum := 0.0
		var x float64
		for _, ps := range parts {
			if i < ps.Len() {
				sum += ps.Points[i].Y
				x = ps.Points[i].X
			}
		}
		agg.Add(x, sum)
		if sum > peak {
			peak = sum
		}
	}
	res.Add(agg)
	res.Headline["peak MB/s"] = peak
	dur := agg.Points[len(agg.Points)-1].X
	res.Headline["sustained MB/s"] = agg.SustainedY(0.2*dur, 0.9*dur)
	res.Headline["path cap MB/s"] = float64(cfg.Tunnel.Channels) * float64(cfg.Tunnel.ChannelRate) * (1 - cfg.Tunnel.EncapOverhead) / 8e6
	res.Headline["RTT ms"] = 2 * cfg.Tunnel.Delay.Millis()
	res.Note("paper: >720 MB/s sustained over an 8 Gb/s max path at 80 ms RTT")
	return res
}
