package experiments

import (
	"fmt"

	"gfs/internal/auth"
	"gfs/internal/core"
	"gfs/internal/metrics"
	"gfs/internal/sim"
	"gfs/internal/units"
)

// DEISAConfig parameterizes the §7 European deployment reproduction.
type DEISAConfig struct {
	Sites     []string // the four core sites
	LinkRate  units.BitsPerSec
	LinkDelay sim.Time
	Servers   int // NSD servers per site
	FileSize  units.Bytes
	BlockSize units.Bytes
}

// DefaultDEISAConfig mirrors the DEISA core: CINECA, FZJ, IDRIS, RZG on
// 1 Gb/s links.
func DefaultDEISAConfig() DEISAConfig {
	return DEISAConfig{
		Sites:     []string{"cineca", "fzj", "idris", "rzg"},
		LinkRate:  units.Gbps,
		LinkDelay: 8 * sim.Millisecond,
		Servers:   8,
		FileSize:  4 * units.GiB,
		BlockSize: units.MiB,
	}
}

// RunDEISA regenerates §7: each core site exports its filesystem to all
// the others; a plasma-turbulence application at each site does direct
// I/O against each remote filesystem, and every pairing should saturate
// the 1 Gb/s inter-site link (paper: "I/O rates of more than 100
// Mbytes/s, thus hitting the theoretical limit of the network").
func RunDEISA(cfg DEISAConfig) *Result {
	res := NewResult("E6", "DEISA MC-GPFS: all-pairs remote direct I/O")
	s := newSim()
	nw := newEthernetNet(s)

	hub := nw.NewNode("deisa-net")
	sites := make([]*Site, len(cfg.Sites))
	for i, name := range cfg.Sites {
		sites[i] = NewSite(s, nw, name)
		nw.DuplexLink(name+"-wan", sites[i].Switch, hub, cfg.LinkRate, cfg.LinkDelay)
		sites[i].BuildFS(FSOptions{
			Name: "gpfs-" + name, BlockSize: cfg.BlockSize,
			Servers: cfg.Servers, ServerEth: units.Gbps,
			StoreRate: 300 * units.MBps, StoreCap: units.TB, StoreStreams: 4,
		})
	}
	// Full-mesh trust: every site imports every other site's filesystem.
	devices := map[[2]int]string{}
	for i := range sites {
		for j := range sites {
			if i == j {
				continue
			}
			devices[[2]int{i, j}] = Peer(sites[i], sites[j], auth.ReadWrite)
		}
	}
	ccfg := core.DefaultClientConfig()
	ccfg.ReadAhead = 32
	for _, st := range sites {
		st.AddClients(1, 2*units.Gbps, ccfg)
	}

	matrix := &metrics.Series{Name: "pair rate", XLabel: "pair index", YLabel: "MB/s"}
	var minRate, maxRate float64
	run(s, func(p *sim.Proc) error {
		// Seed one plasma dataset at each site.
		for i, st := range sites {
			m, err := st.Clients[0].MountLocal(p, st.FS)
			if err != nil {
				return err
			}
			if err := seedFile(p, m, "/turbulence.h5", cfg.FileSize, 8*units.MiB); err != nil {
				return err
			}
			_ = i
		}
		pair := 0
		for i := range sites {
			for j := range sites {
				if i == j {
					continue
				}
				// Site j's application reads site i's dataset directly.
				m, err := sites[j].Clients[0].MountRemote(p, devices[[2]int{i, j}])
				if err != nil {
					return err
				}
				f, err := m.Open(p, "/turbulence.h5")
				if err != nil {
					return err
				}
				t0 := p.Now()
				for off := units.Bytes(0); off < f.Size(); off += cfg.BlockSize {
					if err := f.ReadAt(p, off, cfg.BlockSize); err != nil {
						return err
					}
				}
				rate := float64(f.Size()) / (p.Now() - t0).Seconds() / 1e6
				matrix.Add(float64(pair), rate)
				if minRate == 0 || rate < minRate {
					minRate = rate
				}
				if rate > maxRate {
					maxRate = rate
				}
				pair++
			}
		}
		return nil
	})
	res.Add(matrix)
	res.Headline["min pair MB/s"] = minRate
	res.Headline["max pair MB/s"] = maxRate
	res.Headline["link limit MB/s"] = float64(cfg.LinkRate) / 8e6
	res.Note("paper: >100 MB/s on every pairing — the 1 Gb/s WAN is the only limit")
	return res
}

var _ = fmt.Sprintf
