package experiments

import (
	"flag"
	"io"
	"reflect"
	"sort"
	"testing"
	"time"
)

// registerAll builds the full CLI surface on one FlagSet, the way gfssim
// does. flag.FlagSet panics on duplicate registration, so this is also
// the collision check across groups.
func registerAll(o *Options) *flag.FlagSet {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	o.RegisterEngine(fs)
	o.RegisterTrace(fs)
	o.RegisterTimeline(fs)
	o.RegisterWorkload(fs)
	o.RegisterTuning(fs)
	o.RegisterProfiles(fs)
	return fs
}

func names(fs *flag.FlagSet) []string {
	var out []string
	fs.VisitAll(func(f *flag.Flag) { out = append(out, f.Name) })
	sort.Strings(out)
	return out
}

// TestFlagSurface pins the exact flag names each group registers. A
// binary that registers these groups gets exactly this surface; renaming
// or dropping a flag must update this test, making drift between gfssim
// and gfsbench a compile-and-test-visible event instead of a silent one.
func TestFlagSurface(t *testing.T) {
	groups := []struct {
		name     string
		register func(*Options, *flag.FlagSet)
		want     []string
	}{
		{"engine", (*Options).RegisterEngine,
			[]string{"engine-stats", "scheduler", "solve-tolerance"}},
		{"trace", (*Options).RegisterTrace,
			[]string{"attr", "attr-agg", "interval", "jsonl", "jsonl-stream",
				"stats", "trace", "trace-ring", "trace-sample"}},
		{"timeline", (*Options).RegisterTimeline,
			[]string{"http", "http-hold", "timeline-interval", "timeline-jsonl", "timeline-ring"}},
		{"workload", (*Options).RegisterWorkload,
			[]string{"nodes", "size"}},
		{"tuning", (*Options).RegisterTuning,
			[]string{"block", "crash", "depth", "duration", "filesize",
				"gather", "outage", "ra-depth", "token-shards", "wb-max-dirty", "wide-tokens"}},
		{"profiles", (*Options).RegisterProfiles,
			[]string{"cpuprofile", "memprofile"}},
	}
	for _, g := range groups {
		var o Options
		fs := flag.NewFlagSet(g.name, flag.ContinueOnError)
		g.register(&o, fs)
		if got := names(fs); !reflect.DeepEqual(got, g.want) {
			t.Errorf("%s group registers %v, want %v", g.name, got, g.want)
		}
	}
	// All groups must coexist on one FlagSet (gfssim's full surface).
	var o Options
	registerAll(&o)
}

func TestOptionsParsing(t *testing.T) {
	var o Options
	fs := registerAll(&o)
	err := fs.Parse([]string{
		"-scheduler", "heap", "-engine-stats",
		"-nodes", "64, 256,1024", "-size", "64MiB",
		"-trace-sample", "8", "-interval", "5s",
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.Scheduler != "heap" || !o.EngineStats || o.TraceSample != 8 {
		t.Fatalf("parsed %+v", o)
	}
	counts, err := o.NodeCounts(nil)
	if err != nil || !reflect.DeepEqual(counts, []int{64, 256, 1024}) {
		t.Fatalf("NodeCounts = %v, %v", counts, err)
	}
	sz, err := o.SizeBytes()
	if err != nil || sz != 64<<20 {
		t.Fatalf("SizeBytes = %v, %v", sz, err)
	}
	if def, _ := (&Options{}).NodeCounts([]int{7}); !reflect.DeepEqual(def, []int{7}) {
		t.Fatalf("default NodeCounts = %v", def)
	}
	if _, err := (&Options{Nodes: "64,zero"}).NodeCounts(nil); err == nil {
		t.Fatal("bad node count accepted")
	}
}

func TestOptionsValidate(t *testing.T) {
	defer SetScheduler("")
	bad := []Options{
		{Scheduler: "fibonacci"},
		{JSONLStream: "s.jsonl", TraceOut: "t.json"},
		{JSONLStream: "s.jsonl", TraceRing: 16},
		{Attr: true, AttrAgg: true},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, o)
		}
	}
	good := Options{Scheduler: "heap", Attr: true, JSONLOut: "e.jsonl"}
	if err := good.Validate(); err != nil {
		t.Fatalf("Validate rejected %+v: %v", good, err)
	}
	if SchedulerName() != "heap" {
		t.Fatalf("Validate did not install scheduler, got %q", SchedulerName())
	}
}

// TestSchedulerSelection: NewSim must honor the installed choice, and an
// invalid name must not disturb it.
func TestSchedulerSelection(t *testing.T) {
	defer SetScheduler("")
	if err := SetScheduler("heap"); err != nil {
		t.Fatal(err)
	}
	if got := NewSim().SchedulerName(); got != "heap" {
		t.Fatalf("NewSim scheduler = %q, want heap", got)
	}
	if err := SetScheduler("nope"); err == nil {
		t.Fatal("bad scheduler name accepted")
	}
	if got := NewSim().SchedulerName(); got != "heap" {
		t.Fatalf("failed SetScheduler disturbed choice: %q", got)
	}
	if err := SetScheduler(""); err != nil {
		t.Fatal(err)
	}
	if got := NewSim().SchedulerName(); got != "calendar" {
		t.Fatalf("default scheduler = %q, want calendar", got)
	}
}

// TestObsConfigMapping: the flag-to-ObsConfig translation preserves the
// mutual implications main used to encode by hand.
func TestObsConfigMapping(t *testing.T) {
	o := Options{
		EngineStats: true, Attr: true, TraceSample: 64,
		Interval: 5 * time.Second, TimelineRing: 32,
	}
	cfg := o.ObsConfig(io.Discard)
	if !cfg.Trace || !cfg.Engine || !cfg.Stats || !cfg.Timeline {
		t.Fatalf("ObsConfig = %+v", cfg)
	}
	if cfg.EngineTraceEvery != 4096 {
		t.Fatalf("EngineTraceEvery = %d", cfg.EngineTraceEvery)
	}
	if cfg.SampleOneIn != 64 || cfg.TimelineRing != 32 {
		t.Fatalf("ObsConfig = %+v", cfg)
	}
	if cfg.Interval != 5_000_000_000 {
		t.Fatalf("Interval = %d ns", cfg.Interval)
	}
	plain := Options{}
	if c := plain.ObsConfig(nil); c.Trace || c.Timeline || c.Engine || c.Stats {
		t.Fatalf("zero Options produced observability: %+v", c)
	}
	if plain.NeedObs() {
		t.Fatal("zero Options claims to need obs")
	}
}
