package experiments

import (
	"bytes"
	"strings"
	"testing"

	"gfs/internal/critpath"
	"gfs/internal/sim"
	"gfs/internal/units"
)

// smallFailover is a scaled-down crash drill that keeps test time short:
// two servers, two WAN readers, a three-second outage in a ten-second run.
func smallFailover() FailoverConfig {
	return FailoverConfig{
		Servers:   2,
		Clients:   2,
		WANRate:   2 * units.Gbps,
		WANDelay:  6 * sim.Millisecond,
		FileSize:  64 * units.MiB,
		BlockSize: 256 * units.KiB,
		Interval:  sim.Second,
		CrashAt:   3 * sim.Second,
		Outage:    3 * sim.Second,
		Duration:  12 * sim.Second,
	}
}

// TestFailoverRecovers checks the dip-and-recovery shape: bandwidth
// collapses during the outage and returns to >= 90% of the pre-fault
// rate after the restart, with no read ever surfacing an error.
func TestFailoverRecovers(t *testing.T) {
	res := RunFailover(smallFailover())
	pre := res.Headline["pre-fault Gb/s"]
	dip := res.Headline["dip Gb/s"]
	post := res.Headline["post-recovery Gb/s"]
	ratio := res.Headline["recovery ratio"]
	if pre <= 0 {
		t.Fatalf("pre-fault bandwidth %.2f, want > 0", pre)
	}
	if dip >= pre/2 {
		t.Errorf("dip %.2f Gb/s, want < half of pre-fault %.2f", dip, pre)
	}
	if ratio < 0.90 {
		t.Errorf("recovery ratio %.3f (pre %.2f, post %.2f), want >= 0.90", ratio, pre, post)
	}
	if errs := res.Headline["read errors"]; errs != 0 {
		t.Errorf("%v read errors surfaced; retries should have absorbed the outage", errs)
	}
}

// TestFailoverDeterminism runs the same fault plan twice and demands
// byte-identical traces and reports — scripted failures must replay
// exactly. The critical path must also show the new recovery phase:
// blocks stalled on the dead server charge time to retry backoff.
func TestFailoverDeterminism(t *testing.T) {
	capture := func() (jsonl []byte, rendered, attr string) {
		o := SetObservability(&ObsConfig{Trace: true})
		defer SetObservability(nil)
		res := RunFailover(smallFailover())
		var jb bytes.Buffer
		if err := o.Tracer.WriteJSONL(&jb); err != nil {
			t.Fatal(err)
		}
		return jb.Bytes(), res.String(), critpath.Analyze(o.Tracer).String()
	}
	j1, r1, a1 := capture()
	j2, r2, a2 := capture()
	if !bytes.Equal(j1, j2) {
		t.Error("JSONL trace differs between identical failover runs")
	}
	if r1 != r2 {
		t.Errorf("rendered results differ between identical failover runs:\n%s\n---\n%s", r1, r2)
	}
	if a1 != a2 {
		t.Error("attribution reports differ between identical failover runs")
	}
	if len(j1) == 0 {
		t.Fatal("empty trace")
	}
	if !strings.Contains(a1, "retry") {
		t.Errorf("attribution report missing the retry phase:\n%s", a1)
	}
}
