package experiments

import (
	"fmt"

	"gfs/internal/core"
	"gfs/internal/metrics"
	"gfs/internal/sim"
	"gfs/internal/units"
)

// SC03Config parameterizes the Fig. 5 reproduction.
type SC03Config struct {
	Servers   int // NSD servers in the show-floor booth (paper: 40)
	VizNodes  int // visualization clients at SDSC (paper: 32)
	WANRate   units.BitsPerSec
	WANDelay  sim.Time
	FileSize  units.Bytes // per visualization file
	Files     int
	BlockSize units.Bytes
	Interval  sim.Time
	// RestartGap is the pause when the viz app exhausts its data and is
	// restarted — the dip in Fig. 5.
	RestartGap sim.Time
	// ReadAhead / WriteBehind override the clients' pipelining depth and
	// dirty-page limit (gfssim -ra-depth / -wb-max-dirty). Zero keeps the
	// experiment defaults (32 blocks readahead, client-default dirty cap).
	ReadAhead   int
	WriteBehind int
	// VizEth is each viz node's LAN rate; zero means 1 GbE (the SC'03
	// hardware). The readahead-depth sweep raises it so the measurement is
	// bounded by the WAN pipeline, not a single client's NIC.
	VizEth units.BitsPerSec
}

// DefaultSC03Config mirrors SC'03: 40 dual-IA64 servers on the Phoenix
// show floor serving over a 10 GbE SciNet link to 32 viz nodes at SDSC.
func DefaultSC03Config() SC03Config {
	return SC03Config{
		Servers:    40,
		VizNodes:   32,
		WANRate:    10 * units.Gbps,
		WANDelay:   6 * sim.Millisecond, // Phoenix - San Diego
		FileSize:   2 * units.GiB,
		Files:      64,
		BlockSize:  units.MiB,
		Interval:   sim.Second,
		RestartGap: 8 * sim.Second,
	}
}

// RunSC03 regenerates Fig. 5: native WAN-GPFS bandwidth over time, with
// the mid-run dip where the visualization application ran out of data and
// was restarted.
func RunSC03(cfg SC03Config) *Result {
	res := NewResult("E2/Fig5", "SC'03 native WAN-GPFS bandwidth, show floor to SDSC")
	s := newSim()
	nw := newEthernetNet(s)

	show := NewSite(s, nw, "showfloor")
	show.BuildFS(FSOptions{
		Name: "gpfs-sc03", BlockSize: cfg.BlockSize,
		Servers: cfg.Servers, ServerEth: units.Gbps,
		StoreRate: 200 * units.MBps, StoreCap: units.TB, StoreStreams: 4,
	})
	// SciNet 10 GbE from the booth to the TeraGrid, then SDSC.
	sdscSW := nw.NewNode("sdsc-sw")
	wanFwd, _ := nw.DuplexLink("scinet", show.Switch, sdscSW, cfg.WANRate, cfg.WANDelay)
	mon := metrics.NewRateMonitor(s, "scinet", cfg.Interval)
	wanFwd.Monitor = mon

	ccfg := core.DefaultClientConfig()
	ccfg.ReadAhead = 32
	if cfg.ReadAhead > 0 {
		ccfg.ReadAhead = cfg.ReadAhead
	}
	if cfg.WriteBehind > 0 {
		ccfg.WriteBehind = cfg.WriteBehind
	}
	vizEth := cfg.VizEth
	if vizEth == 0 {
		vizEth = units.Gbps
	}
	var viz []*core.Client
	for i := 0; i < cfg.VizNodes; i++ {
		node := nw.NewNode(fmt.Sprintf("sdsc-viz%d", i))
		nw.DuplexLink(fmt.Sprintf("viz%d", i), node, sdscSW, vizEth, lanDelay)
		viz = append(viz, core.NewClient(show.Cluster, fmt.Sprintf("viz%d", i), node, ccfg,
			core.Identity{DN: fmt.Sprintf("/O=SDSC/CN=viz%d", i)}))
	}
	// A local seeder writes the dataset on the show floor first (data was
	// copied from SDSC to the booth before the demo).
	seeder := show.AddClients(1, 10*units.Gbps, core.DefaultClientConfig())[0]

	var vizStart, vizEnd sim.Time
	var vizMounts []*core.Mount
	run(s, func(p *sim.Proc) error {
		sm, err := seeder.MountLocal(p, show.FS)
		if err != nil {
			return err
		}
		for i := 0; i < cfg.Files; i++ {
			if err := seedFile(p, sm, fmt.Sprintf("/viz%02d.dat", i), cfg.FileSize, 8*units.MiB); err != nil {
				return err
			}
		}
		mounts, err := MountAll(p, viz, show.FS, "")
		if err != nil {
			return err
		}
		vizMounts = mounts
		vizStart = p.Now()
		// pass streams one file per viz node; shift picks a disjoint file
		// set so the second pass isn't served from the pagepool.
		pass := func(shift int) error {
			wg := sim.NewWaitGroup(s)
			var firstErr error
			for i, m := range mounts {
				m, i := m, i
				wg.Add(1)
				s.Go(fmt.Sprintf("viz%d", i), func(vp *sim.Proc) {
					defer wg.Done()
					f, err := m.Open(vp, fmt.Sprintf("/viz%02d.dat", (i+shift)%cfg.Files))
					if err != nil {
						if firstErr == nil {
							firstErr = err
						}
						return
					}
					for off := units.Bytes(0); off < f.Size(); off += cfg.BlockSize {
						if err := f.ReadAt(vp, off, cfg.BlockSize); err != nil {
							if firstErr == nil {
								firstErr = err
							}
							return
						}
					}
				})
			}
			wg.Wait(p)
			return firstErr
		}
		if err := pass(0); err != nil {
			return err
		}
		p.Sleep(cfg.RestartGap) // the Fig. 5 dip
		err = pass(cfg.VizNodes)
		vizEnd = p.Now()
		return err
	})

	ser := mon.SeriesGbps()
	vizSer := &metrics.Series{Name: "WAN bandwidth", XLabel: "time (s)", YLabel: "Gb/s"}
	for _, pt := range ser.Points {
		if pt.X >= vizStart.Seconds() {
			vizSer.Add(pt.X-vizStart.Seconds(), pt.Y)
		}
	}
	res.Add(vizSer)
	res.Headline["peak Gb/s"] = vizSer.MaxY()
	res.Headline["sustained GB/s"] = vizSer.MeanY() / 8
	res.Headline["link Gb/s"] = float64(cfg.WANRate) / 1e9
	// Per-client read throughput over the active read time (excluding the
	// restart gap) — the figure of merit for the readahead-depth sweep: a
	// single WAN client is latency-bound, so this scales with ReadAhead
	// until the link or the page pool saturates.
	var clientBytes units.Bytes
	for _, m := range vizMounts {
		clientBytes += m.Stats().BytesRead
	}
	if readSec := (vizEnd - vizStart - cfg.RestartGap).Seconds(); readSec > 0 && len(vizMounts) > 0 {
		res.Headline["client MB/s"] = float64(clientBytes) / float64(len(vizMounts)) / readSec / 1e6
	}
	res.Note("paper: peak 8.96 Gb/s on a 10 Gb/s link, >1 GB/s sustained; dip = viz app restart")
	return res
}
