package experiments

import (
	"fmt"

	"gfs/internal/hsm"
	"gfs/internal/metrics"
	"gfs/internal/sim"
	"gfs/internal/units"
)

// HSMConfig parameterizes the §8 future-work scenario.
type HSMConfig struct {
	DiskPool units.Bytes
	Drives   int
	Carts    int
	Files    int
	FileSize units.Bytes
	Accesses int
}

// DefaultHSMConfig models a scaled-down archive-backed GFS: the disk pool
// holds a fraction of the dataset, the rest lives on tape.
func DefaultHSMConfig() HSMConfig {
	return HSMConfig{
		DiskPool: 2 * units.TB,
		Drives:   4,
		Carts:    64,
		Files:    40,
		FileSize: 80 * units.GB,
		Accesses: 24,
	}
}

// RunHSM regenerates the §8 scenario: data migrates to tape as it cools,
// and recalls are automatic but expensive — quantifying the latency cliff
// between resident and migrated data that motivates "copyright library"
// archive sites.
func RunHSM(cfg HSMConfig) *Result {
	res := NewResult("E9", "HSM watermark migration and transparent recall")
	s := newSim()
	lib := hsm.NewLibrary(s, "silo", cfg.Drives, cfg.Carts, hsm.LTO2())
	mgr := hsm.NewManager(s, "gfs-hsm", lib, cfg.DiskPool)

	resident := metrics.NewSummary("resident access s")
	recall := metrics.NewSummary("recall access s")
	run(s, func(p *sim.Proc) error {
		// Ingest a dataset 1.6x the disk pool: migration must kick in.
		for i := 0; i < cfg.Files; i++ {
			if err := mgr.Ingest(p, fmt.Sprintf("/archive/run%03d", i), cfg.FileSize); err != nil {
				return err
			}
			p.Sleep(10 * sim.Minute) // datasets arrive over days
		}
		// Access pattern: alternate hot (recent) and cold (old) files.
		for a := 0; a < cfg.Accesses; a++ {
			var name string
			if a%2 == 0 {
				name = fmt.Sprintf("/archive/run%03d", cfg.Files-1-a%8)
			} else {
				name = fmt.Sprintf("/archive/run%03d", a%8)
			}
			t0 := p.Now()
			prev, err := mgr.Access(p, name)
			if err != nil {
				return err
			}
			el := (p.Now() - t0).Seconds()
			if prev == hsm.Migrated {
				recall.Observe(el)
			} else {
				resident.Observe(el)
			}
			p.Sleep(sim.Minute)
		}
		return nil
	})

	res.Headline["migrations"] = float64(mgr.Migrations())
	res.Headline["recalls"] = float64(mgr.Recalls())
	res.Headline["mean recall s"] = recall.Mean()
	res.Headline["max recall s"] = recall.Max()
	res.Headline["mean resident s"] = resident.Mean()
	res.Headline["disk pool TB"] = float64(cfg.DiskPool) / 1e12
	res.Headline["dataset TB"] = float64(cfg.Files) * float64(cfg.FileSize) / 1e12
	res.Note("recalls stream a whole file from LTO-2 at ~30 MB/s plus mount time — minutes, not milliseconds")
	return res
}
