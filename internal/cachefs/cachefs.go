// Package cachefs implements the paper's §8 projection: "many more sites
// will have large disk capabilities, but will tend to rely on fewer,
// centralized sites for data archiving … Global File Systems will play
// their part as automatic caching becomes an integral piece of the
// overall file access mechanism."
//
// A Cache pairs a site-local filesystem mount (the cache tier) with a
// remote Global File System mount (the authoritative "copyright library").
// Opening a file checks the local copy against the remote attributes,
// streams it across the WAN on a miss, and serves it locally thereafter,
// evicting least-recently-used copies under a byte budget. The cache is
// read-through: writes belong on the authoritative side.
package cachefs

import (
	"fmt"
	"path"
	"sort"

	"gfs/internal/core"
	"gfs/internal/sim"
	"gfs/internal/units"
)

// entry tracks one locally cached file.
type entry struct {
	remotePath string
	localPath  string
	size       units.Bytes
	lastUse    sim.Time
}

// Cache is a read-through file cache over a remote GFS.
type Cache struct {
	sim    *sim.Sim
	local  *core.Mount
	remote *core.Mount

	// Dir is the local directory holding cached copies.
	Dir string
	// Budget caps the bytes of local copies; LRU eviction enforces it.
	Budget units.Bytes
	// FetchIO is the chunk size used when staging a file across the WAN.
	FetchIO units.Bytes

	entries map[string]*entry
	used    units.Bytes

	hits      uint64
	misses    uint64
	refetches uint64
	evictions uint64
}

// New creates a cache rooted at dir on the local mount.
func New(s *sim.Sim, p *sim.Proc, local, remote *core.Mount, dir string, budget units.Bytes) (*Cache, error) {
	if budget <= 0 {
		return nil, fmt.Errorf("cachefs: budget %d", budget)
	}
	if err := local.Mkdir(p, dir); err != nil {
		return nil, fmt.Errorf("cachefs: creating %s: %w", dir, err)
	}
	return &Cache{
		sim: s, local: local, remote: remote,
		Dir: dir, Budget: budget, FetchIO: 4 * units.MiB,
		entries: make(map[string]*entry),
	}, nil
}

// Stats returns (hits, misses, refetches, evictions).
func (c *Cache) Stats() (uint64, uint64, uint64, uint64) {
	return c.hits, c.misses, c.refetches, c.evictions
}

// Used returns the bytes currently cached.
func (c *Cache) Used() units.Bytes { return c.used }

// Cached reports whether a remote path currently has a local copy.
func (c *Cache) Cached(remotePath string) bool {
	_, ok := c.entries[remotePath]
	return ok
}

// localName maps a remote path into the cache directory.
func (c *Cache) localName(remotePath string) string {
	return path.Join(c.Dir, fmt.Sprintf("c%08x-%s", hash(remotePath), path.Base(remotePath)))
}

func hash(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

// Open returns a handle on the local copy of remotePath, staging it across
// the WAN first if it is absent or stale (remote size changed).
func (c *Cache) Open(p *sim.Proc, remotePath string) (*core.File, error) {
	attrs, err := c.remote.Stat(p, remotePath)
	if err != nil {
		return nil, fmt.Errorf("cachefs: remote stat: %w", err)
	}
	if attrs.Dir {
		return nil, fmt.Errorf("cachefs: %s is a directory", remotePath)
	}
	if e, ok := c.entries[remotePath]; ok {
		if e.size == attrs.Size {
			c.hits++
			e.lastUse = c.sim.Now()
			return c.local.Open(p, e.localPath)
		}
		// Stale: the library's copy changed size. Drop and refetch.
		c.refetches++
		if err := c.drop(p, e); err != nil {
			return nil, err
		}
	}
	c.misses++
	if attrs.Size > c.Budget {
		return nil, fmt.Errorf("cachefs: %s (%v) exceeds the cache budget %v", remotePath, attrs.Size, c.Budget)
	}
	if err := c.makeRoom(p, attrs.Size); err != nil {
		return nil, err
	}
	e := &entry{remotePath: remotePath, localPath: c.localName(remotePath), size: attrs.Size}
	if err := c.stage(p, remotePath, e.localPath, attrs.Size); err != nil {
		return nil, err
	}
	e.lastUse = c.sim.Now()
	c.entries[remotePath] = e
	c.used += e.size
	return c.local.Open(p, e.localPath)
}

// stage streams the remote file to the local copy.
func (c *Cache) stage(p *sim.Proc, remotePath, localPath string, size units.Bytes) error {
	src, err := c.remote.Open(p, remotePath)
	if err != nil {
		return err
	}
	dst, err := c.local.Create(p, localPath, core.DefaultPerm)
	if err != nil {
		return err
	}
	for off := units.Bytes(0); off < size; off += c.FetchIO {
		n := c.FetchIO
		if off+n > size {
			n = size - off
		}
		if err := src.ReadAt(p, off, n); err != nil {
			return err
		}
		if err := dst.WriteAt(p, off, n); err != nil {
			return err
		}
	}
	return dst.Close(p)
}

// makeRoom evicts LRU entries until size fits in the budget.
func (c *Cache) makeRoom(p *sim.Proc, size units.Bytes) error {
	for c.used+size > c.Budget {
		var victim *entry
		for _, e := range c.entries {
			if victim == nil || e.lastUse < victim.lastUse ||
				(e.lastUse == victim.lastUse && e.remotePath < victim.remotePath) {
				victim = e
			}
		}
		if victim == nil {
			return fmt.Errorf("cachefs: cannot make room for %v", size)
		}
		c.evictions++
		if err := c.drop(p, victim); err != nil {
			return err
		}
	}
	return nil
}

// drop removes a local copy.
func (c *Cache) drop(p *sim.Proc, e *entry) error {
	if err := c.local.Remove(p, e.localPath); err != nil {
		return err
	}
	c.used -= e.size
	delete(c.entries, e.remotePath)
	return nil
}

// Contents lists cached remote paths, sorted (for inspection).
func (c *Cache) Contents() []string {
	out := make([]string, 0, len(c.entries))
	for k := range c.entries {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
