package cachefs_test

import (
	"fmt"
	"testing"

	"gfs/internal/auth"
	"gfs/internal/cachefs"
	"gfs/internal/core"
	"gfs/internal/experiments"
	"gfs/internal/netsim"
	"gfs/internal/sim"
	"gfs/internal/units"
)

// cacheRig: a central "library" site and an edge site 30 ms away, with the
// edge client holding both a local mount (cache tier) and a remote mount.
type cacheRig struct {
	s       *sim.Sim
	library *experiments.Site
	edge    *experiments.Site
	client  *core.Client
	device  string
}

func newCacheRig(t testing.TB) *cacheRig {
	t.Helper()
	s := sim.New()
	nw := netsim.New(s)
	library := experiments.NewSite(s, nw, "library")
	library.BuildFS(experiments.FSOptions{
		Name: "archive", BlockSize: units.MiB,
		Servers: 4, ServerEth: units.Gbps,
		StoreRate: 400 * units.MBps, StoreCap: 10 * units.TB, StoreStreams: 4,
	})
	edge := experiments.NewSite(s, nw, "edge")
	edge.BuildFS(experiments.FSOptions{
		Name: "scratch", BlockSize: units.MiB,
		Servers: 2, ServerEth: units.Gbps,
		StoreRate: 400 * units.MBps, StoreCap: units.TB, StoreStreams: 4,
	})
	nw.DuplexLink("wan", library.Switch, edge.Switch, units.Gbps, 30*sim.Millisecond)
	device := experiments.Peer(library, edge, auth.ReadOnly)
	client := edge.AddClients(1, 2*units.Gbps, core.DefaultClientConfig())[0]
	return &cacheRig{s: s, library: library, edge: edge, client: client, device: device}
}

func (r *cacheRig) run(t testing.TB, fn func(p *sim.Proc) error) {
	t.Helper()
	var err error
	done := false
	r.s.Go("t", func(p *sim.Proc) { err = fn(p); done = true })
	r.s.Run()
	if !done {
		t.Fatal("deadlock")
	}
	if err != nil {
		t.Fatal(err)
	}
}

// seedLibrary writes n files of the given size at the library site.
func seedLibrary(p *sim.Proc, lib *experiments.Site, n int, size units.Bytes) ([]string, error) {
	seeder := lib.AddClients(1, 10*units.Gbps, core.DefaultClientConfig())[0]
	m, err := seeder.MountLocal(p, lib.FS)
	if err != nil {
		return nil, err
	}
	var names []string
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("/ds%02d", i)
		f, err := m.Create(p, name, core.DefaultPerm)
		if err != nil {
			return nil, err
		}
		for off := units.Bytes(0); off < size; off += 4 * units.MiB {
			ln := min(4*units.MiB, size-off)
			if err := f.WriteAt(p, off, ln); err != nil {
				return nil, err
			}
		}
		if err := f.Close(p); err != nil {
			return nil, err
		}
		names = append(names, name)
	}
	return names, nil
}

func min(a, b units.Bytes) units.Bytes {
	if a < b {
		return a
	}
	return b
}

func TestMissThenHit(t *testing.T) {
	r := newCacheRig(t)
	r.run(t, func(p *sim.Proc) error {
		names, err := seedLibrary(p, r.library, 1, 64*units.MiB)
		if err != nil {
			return err
		}
		local, err := r.client.MountLocal(p, r.edge.FS)
		if err != nil {
			return err
		}
		remote, err := r.client.MountRemote(p, r.device)
		if err != nil {
			return err
		}
		c, err := cachefs.New(r.s, p, local, remote, "/cache", 512*units.MiB)
		if err != nil {
			return err
		}
		t0 := p.Now()
		f, err := c.Open(p, names[0])
		if err != nil {
			return err
		}
		missTime := p.Now() - t0
		if err := f.ReadAt(p, 0, f.Size()); err != nil {
			return err
		}
		if !c.Cached(names[0]) {
			return fmt.Errorf("not cached after miss")
		}
		// Second open: pure hit — only a remote stat crosses the WAN.
		t1 := p.Now()
		g, err := c.Open(p, names[0])
		if err != nil {
			return err
		}
		hitTime := p.Now() - t1
		if err := g.ReadAt(p, 0, g.Size()); err != nil {
			return err
		}
		if hitTime >= missTime/3 {
			return fmt.Errorf("hit (%v) not much cheaper than miss (%v)", hitTime, missTime)
		}
		h, ms, _, _ := c.Stats()
		if h != 1 || ms != 1 {
			return fmt.Errorf("stats: hits=%d misses=%d", h, ms)
		}
		return nil
	})
}

func TestLRUEviction(t *testing.T) {
	r := newCacheRig(t)
	r.run(t, func(p *sim.Proc) error {
		names, err := seedLibrary(p, r.library, 4, 32*units.MiB)
		if err != nil {
			return err
		}
		local, _ := r.client.MountLocal(p, r.edge.FS)
		remote, _ := r.client.MountRemote(p, r.device)
		// Budget for ~2 files.
		c, err := cachefs.New(r.s, p, local, remote, "/cache", 70*units.MiB)
		if err != nil {
			return err
		}
		for i := 0; i < 3; i++ {
			if _, err := c.Open(p, names[i]); err != nil {
				return err
			}
			p.Sleep(sim.Second)
		}
		if c.Cached(names[0]) {
			return fmt.Errorf("LRU victim still cached: %v", c.Contents())
		}
		if !c.Cached(names[1]) || !c.Cached(names[2]) {
			return fmt.Errorf("wrong eviction order: %v", c.Contents())
		}
		_, _, _, ev := c.Stats()
		if ev != 1 {
			return fmt.Errorf("evictions = %d", ev)
		}
		if c.Used() > c.Budget {
			return fmt.Errorf("over budget: %v", c.Used())
		}
		return nil
	})
}

func TestStaleRefetch(t *testing.T) {
	r := newCacheRig(t)
	r.run(t, func(p *sim.Proc) error {
		names, err := seedLibrary(p, r.library, 1, 16*units.MiB)
		if err != nil {
			return err
		}
		local, _ := r.client.MountLocal(p, r.edge.FS)
		remote, _ := r.client.MountRemote(p, r.device)
		c, err := cachefs.New(r.s, p, local, remote, "/cache", 512*units.MiB)
		if err != nil {
			return err
		}
		if _, err := c.Open(p, names[0]); err != nil {
			return err
		}
		// The library's copy grows (a new release of the dataset).
		libClient := r.library.AddClients(1, 10*units.Gbps, core.DefaultClientConfig())[0]
		lm, _ := libClient.MountLocal(p, r.library.FS)
		f, err := lm.Open(p, names[0])
		if err != nil {
			return err
		}
		if err := f.WriteAt(p, f.Size(), 8*units.MiB); err != nil {
			return err
		}
		if err := f.Close(p); err != nil {
			return err
		}
		g, err := c.Open(p, names[0])
		if err != nil {
			return err
		}
		if g.Size() != 24*units.MiB {
			return fmt.Errorf("stale copy served: size %v", g.Size())
		}
		_, _, rf, _ := c.Stats()
		if rf != 1 {
			return fmt.Errorf("refetches = %d", rf)
		}
		return nil
	})
}

func TestOversizedFileRejected(t *testing.T) {
	r := newCacheRig(t)
	r.run(t, func(p *sim.Proc) error {
		names, err := seedLibrary(p, r.library, 1, 64*units.MiB)
		if err != nil {
			return err
		}
		local, _ := r.client.MountLocal(p, r.edge.FS)
		remote, _ := r.client.MountRemote(p, r.device)
		c, err := cachefs.New(r.s, p, local, remote, "/cache", 32*units.MiB)
		if err != nil {
			return err
		}
		if _, err := c.Open(p, names[0]); err == nil {
			return fmt.Errorf("oversized file cached")
		}
		return nil
	})
}

func TestMissingRemoteFile(t *testing.T) {
	r := newCacheRig(t)
	r.run(t, func(p *sim.Proc) error {
		if _, err := seedLibrary(p, r.library, 1, units.MiB); err != nil {
			return err
		}
		local, _ := r.client.MountLocal(p, r.edge.FS)
		remote, _ := r.client.MountRemote(p, r.device)
		c, err := cachefs.New(r.s, p, local, remote, "/cache", 32*units.MiB)
		if err != nil {
			return err
		}
		if _, err := c.Open(p, "/nope"); err == nil {
			return fmt.Errorf("missing remote file cached")
		}
		return nil
	})
}
