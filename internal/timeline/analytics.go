// Analytics over rate-vs-time series: the quantities the paper eyeballs
// off its figures — how deep a fault dip goes and how fast it recovers
// (Fig. 5), how evenly load spreads across NSD servers, and how far the
// slowest rank lags the pack.
package timeline

import (
	"math"
	"sort"
)

// DipReport quantifies a Fig. 5-style outage on a throughput series.
type DipReport struct {
	// Baseline is the mean rate over the pre-fault window.
	Baseline float64
	// Dip is the minimum rate observed during the outage, DipT its time
	// (-1 when the outage window holds no points).
	Dip  float64
	DipT float64
	// OutageMean is the mean rate across the whole outage window — the
	// throughput actually delivered while degraded.
	OutageMean float64
	// RecoverAt is the first window at or after the restart whose rate
	// reaches frac*Baseline; TimeToRecover is how long after the restart
	// that took. Both are -1 when the series never recovers.
	RecoverAt     float64
	TimeToRecover float64
	// Recovered is the mean rate from RecoverAt to the end of the
	// analysis window, and Ratio is Recovered/Baseline — the paper's
	// "ratio 1.00" recovery claim, computed instead of eyeballed.
	Recovered float64
	Ratio     float64
}

// AnalyzeDip measures an outage on pts (window-time/rate pairs, sorted
// by time): the fault lands at faultAt, service returns at restartAt,
// and the analysis stops at end (all in the series' time base).
// Baseline is averaged over [baselineFrom, faultAt); the outage window
// is [faultAt, restartAt); recovery requires a window >= frac*Baseline
// at or after restartAt.
func AnalyzeDip(pts []Point, baselineFrom, faultAt, restartAt, end, frac float64) DipReport {
	rep := DipReport{
		Baseline:   MeanBetween(pts, baselineFrom, faultAt),
		OutageMean: MeanBetween(pts, faultAt, restartAt),
		RecoverAt:  -1, TimeToRecover: -1, DipT: -1,
	}
	rep.DipT, rep.Dip = MinBetween(pts, faultAt, restartAt)
	threshold := frac * rep.Baseline
	for _, p := range pts {
		if p.T >= restartAt && p.T < end && p.V >= threshold {
			rep.RecoverAt = p.T
			rep.TimeToRecover = p.T - restartAt
			break
		}
	}
	if rep.RecoverAt >= 0 {
		rep.Recovered = MeanBetween(pts, rep.RecoverAt, end)
	}
	if rep.Baseline > 0 {
		rep.Ratio = rep.Recovered / rep.Baseline
	}
	return rep
}

// DipDepthPct is the dip as a percentage drop below baseline (100 = a
// total stall, 0 = no dip).
func (r DipReport) DipDepthPct() float64 {
	if r.Baseline <= 0 {
		return 0
	}
	d := (1 - r.Dip/r.Baseline) * 100
	if d < 0 {
		return 0
	}
	return d
}

// MeanBetween averages V over points with T in [from, to).
func MeanBetween(pts []Point, from, to float64) float64 {
	sum, n := 0.0, 0
	for _, p := range pts {
		if p.T >= from && p.T < to {
			sum += p.V
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MinBetween returns the time and value of the minimum V over points
// with T in [from, to), or (-1, 0) when the window is empty.
func MinBetween(pts []Point, from, to float64) (t, v float64) {
	t, v = -1, 0
	for _, p := range pts {
		if p.T >= from && p.T < to && (t < 0 || p.V < v) {
			t, v = p.T, p.V
		}
	}
	return t, v
}

// Imbalance summarizes how unevenly one window's load spreads across a
// set of resources (the per-window NSD server view).
type Imbalance struct {
	N           int
	Max, Mean   float64
	MaxOverMean float64 // 1.0 = perfectly balanced
	CoV         float64 // population stddev / mean
}

// ComputeImbalance measures one window's values across resources.
func ComputeImbalance(vals []float64) Imbalance {
	im := Imbalance{N: len(vals)}
	if len(vals) == 0 {
		return im
	}
	for _, v := range vals {
		im.Mean += v
		if v > im.Max {
			im.Max = v
		}
	}
	im.Mean /= float64(len(vals))
	if im.Mean <= 0 {
		return im
	}
	var ss float64
	for _, v := range vals {
		d := v - im.Mean
		ss += d * d
	}
	im.MaxOverMean = im.Max / im.Mean
	im.CoV = math.Sqrt(ss/float64(len(vals))) / im.Mean
	return im
}

// CoVSeries computes the per-window coefficient of variation across a
// group of series from one collector (times align exactly): the
// NSD-load-imbalance curve. Windows where fewer than two series have
// points are skipped.
func CoVSeries(group []*Series, name string) *Series {
	acc := map[float64][]float64{}
	for _, se := range group {
		for _, p := range se.Points() {
			acc[p.T] = append(acc[p.T], p.V)
		}
	}
	ts := make([]float64, 0, len(acc))
	for t, vs := range acc {
		if len(vs) >= 2 {
			ts = append(ts, t)
		}
	}
	sort.Float64s(ts)
	out := &Series{Name: name, Unit: "CoV"}
	for _, t := range ts {
		out.add(t, ComputeImbalance(acc[t]).CoV)
	}
	return out
}

// Skew summarizes per-rank straggler spread: given one throughput (or
// progress) value per rank, how far does the slowest lag the median?
type Skew struct {
	N                int
	Min, Median, Max float64
	// SlowdownVsMedian is Median/Min — 2.0 means the straggler runs at
	// half the median rate. +Inf when a rank is fully stalled (Min == 0
	// with a nonzero median); 0 for an empty or all-zero input.
	SlowdownVsMedian float64
}

// StragglerSkew measures per-rank spread on one window's rates.
func StragglerSkew(rates []float64) Skew {
	sk := Skew{N: len(rates)}
	if len(rates) == 0 {
		return sk
	}
	sorted := append([]float64(nil), rates...)
	sort.Float64s(sorted)
	sk.Min, sk.Max = sorted[0], sorted[len(sorted)-1]
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		sk.Median = sorted[mid]
	} else {
		sk.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	switch {
	case sk.Min > 0:
		sk.SlowdownVsMedian = sk.Median / sk.Min
	case sk.Median > 0:
		sk.SlowdownVsMedian = math.Inf(1)
	}
	return sk
}
