package timeline

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
)

// Exporter publishes a collector's timeline over HTTP while a run is in
// flight: Prometheus text on /metrics (latest window, one sample per
// series) and the retained history as JSON on /timeline. The simulator
// is single-threaded and HTTP handlers run on other goroutines, so the
// exporter never touches live collector state: at each tick it copies
// an immutable view under a mutex, and handlers read that copy.
type Exporter struct {
	mu     sync.Mutex
	label  string
	snap   Snapshot
	series []exportSeries
	ticks  int
}

type exportSeries struct {
	Name string    `json:"name"`
	Unit string    `json:"unit"`
	T    []float64 `json:"t"`
	V    []float64 `json:"v"`
}

// NewExporter returns an empty exporter; wire it to a collector with
// Attach (or ObsConfig.TimelineExport).
func NewExporter() *Exporter { return &Exporter{} }

// Attach subscribes the exporter to a collector's ticks.
func (e *Exporter) Attach(c *Collector) { c.OnTick(e.publish) }

func (e *Exporter) publish(c *Collector, snap Snapshot) {
	series := make([]exportSeries, 0, len(c.Names()))
	for _, se := range c.Series() {
		pts := se.Points()
		es := exportSeries{
			Name: se.Name, Unit: se.Unit,
			T: make([]float64, len(pts)), V: make([]float64, len(pts)),
		}
		for i, p := range pts {
			es.T[i], es.V[i] = p.T, p.V
		}
		series = append(series, es)
	}
	e.mu.Lock()
	e.label, e.snap, e.series = c.Label, snap, series
	e.ticks++
	e.mu.Unlock()
}

// Handler returns the exporter's HTTP mux: /metrics and /timeline.
func (e *Exporter) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", e.serveMetrics)
	mux.HandleFunc("/timeline", e.serveTimeline)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "gfs timeline exporter: /metrics (Prometheus text), /timeline (JSON)")
	})
	return mux
}

// serveMetrics renders the latest window in the Prometheus text
// exposition format: one gfs_timeline sample per series, labeled by
// series name and unit, plus the window-end virtual time.
func (e *Exporter) serveMetrics(w http.ResponseWriter, r *http.Request) {
	e.mu.Lock()
	snap, label := e.snap, e.label
	e.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintln(w, "# HELP gfs_timeline Latest per-interval timeline value for each series.")
	fmt.Fprintln(w, "# TYPE gfs_timeline gauge")
	names := append([]string(nil), snap.Names...)
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "gfs_timeline{run=%q,series=%q,unit=%q} %s\n",
			label, n, snap.Units[n], strconv.FormatFloat(snap.Values[n], 'g', -1, 64))
	}
	fmt.Fprintln(w, "# HELP gfs_timeline_sim_seconds Virtual time of the latest closed window.")
	fmt.Fprintln(w, "# TYPE gfs_timeline_sim_seconds gauge")
	fmt.Fprintf(w, "gfs_timeline_sim_seconds %s\n", strconv.FormatFloat(snap.T, 'g', -1, 64))
}

// serveTimeline renders the retained history of every series as JSON.
func (e *Exporter) serveTimeline(w http.ResponseWriter, r *http.Request) {
	e.mu.Lock()
	out := struct {
		Run    string         `json:"run"`
		T      float64        `json:"t"`
		Series []exportSeries `json:"series"`
	}{Run: e.label, T: e.snap.T, Series: e.series}
	e.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(out)
}
