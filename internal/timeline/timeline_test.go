package timeline

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"gfs/internal/sim"
)

// driveCounter schedules one event per 100ms until end that adds step to
// a cumulative counter, returning a pointer to it — a deterministic
// stand-in for BytesServed-style counters.
func driveCounter(s *sim.Sim, end sim.Time, step float64) *float64 {
	cum := new(float64)
	for t := 100 * sim.Millisecond; t <= end; t += 100 * sim.Millisecond {
		s.At(t, func() { *cum += step })
	}
	return cum
}

func TestRateWindows(t *testing.T) {
	s := sim.New()
	cum := driveCounter(s, 3*sim.Second, 10) // 100/s steady
	c := New(s, sim.Second)
	c.AddSource(func(tk *Tick) {
		tk.Rate("bytes", "B/s", *cum)
		tk.Gauge("depth", "reqs", 7)
	})
	s.Run()

	se := c.Get("bytes")
	if se == nil {
		t.Fatal("series not created")
	}
	pts := se.Points()
	if len(pts) != 3 {
		t.Fatalf("got %d windows, want 3: %v", len(pts), pts)
	}
	for i, p := range pts {
		if want := float64(i + 1); p.T != want {
			t.Errorf("window %d at t=%v, want %v", i, p.T, want)
		}
		if p.V != 100 {
			t.Errorf("window %d rate %v, want 100 (delta 10 B per 100ms)", i, p.V)
		}
	}
	if g, _ := c.Get("depth").Last(); g.V != 7 {
		t.Errorf("gauge %v, want 7", g.V)
	}
	if c.Get("depth").Unit != "reqs" {
		t.Errorf("unit %q, want reqs", c.Get("depth").Unit)
	}
}

func TestRatioWindows(t *testing.T) {
	s := sim.New()
	hits, total := new(float64), new(float64)
	s.At(sim.Second/2, func() { *hits += 3; *total += 4 })
	s.At(3*sim.Second/2, func() { *hits += 1; *total += 4 })
	s.At(3*sim.Second, func() {}) // keeps the third (traffic-free) window open
	c := New(s, sim.Second)
	c.AddSource(func(tk *Tick) { tk.Ratio("hit", "frac", *hits, *total) })
	s.Run()
	want := []float64{0.75, 0.25, 0}
	vals := c.Get("hit").Values()
	if len(vals) != 3 {
		t.Fatalf("got %d windows, want 3", len(vals))
	}
	for i, v := range vals {
		if v != want[i] {
			t.Errorf("window %d ratio %v, want %v", i, v, want[i])
		}
	}
}

// TestDaemonTicksDoNotKeepRunAlive is the regression test for the
// livelock this package's first draft had: two independent periodic
// collectors each counted the other as pending work and rescheduled
// forever. Daemon events end with the real workload.
func TestDaemonTicksDoNotKeepRunAlive(t *testing.T) {
	s := sim.New()
	a := New(s, sim.Second)
	b := New(s, 300*sim.Millisecond)
	a.AddSource(func(tk *Tick) { tk.Gauge("x", "", 1) })
	b.AddSource(func(tk *Tick) { tk.Gauge("y", "", 2) })
	s.At(5*sim.Second, func() {}) // the only real work
	s.Run()
	if s.Now() != 5*sim.Second {
		t.Fatalf("run ended at %v, want 5s (collectors must not extend the run)", s.Now())
	}
	if a.Ticks() == 0 || b.Ticks() == 0 {
		t.Fatalf("collectors never ticked: a=%d b=%d", a.Ticks(), b.Ticks())
	}
}

func TestRingRetention(t *testing.T) {
	s := sim.New()
	cum := driveCounter(s, 10*sim.Second, 1)
	c := New(s, sim.Second)
	c.SetRing(4)
	c.AddSource(func(tk *Tick) { tk.Rate("r", "x/s", *cum) })
	s.Run()

	se := c.Get("r")
	if se.Len() != 4 {
		t.Fatalf("ring holds %d, want 4", se.Len())
	}
	if se.Total() != 10 {
		t.Fatalf("total %d, want 10", se.Total())
	}
	pts := se.Points()
	for i, p := range pts {
		if want := float64(7 + i); p.T != want {
			t.Errorf("ring pos %d at t=%v, want %v (oldest-first linearization)", i, p.T, want)
		}
	}
	if last, ok := se.Last(); !ok || last.T != 10 {
		t.Errorf("Last = %v/%v, want t=10", last, ok)
	}
}

func TestStreamDeterminismAndRoundTrip(t *testing.T) {
	runOnce := func() []byte {
		var buf bytes.Buffer
		s := sim.New()
		cum := driveCounter(s, 3*sim.Second, 2.5)
		c := New(s, sim.Second)
		c.Label = "unit"
		c.SetStream(&buf)
		c.AddSource(func(tk *Tick) {
			tk.Rate("a.rate", "B/s", *cum)
			tk.Gauge("b.gauge", "reqs", *cum/2)
		})
		s.Run()
		if err := c.StreamErr(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	b1, b2 := runOnce(), runOnce()
	if !bytes.Equal(b1, b2) {
		t.Fatalf("streams differ:\n%s\n---\n%s", b1, b2)
	}
	if !strings.HasPrefix(string(b1), `{"timeline":"unit","interval_s":1}`) {
		t.Fatalf("missing header: %s", b1)
	}

	dump, err := ReadJSONL(bytes.NewReader(b1))
	if err != nil {
		t.Fatal(err)
	}
	if len(dump.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(dump.Runs))
	}
	run := dump.Runs[0]
	if run.Label != "unit" || run.IntervalS != 1 {
		t.Fatalf("header round-trip: %q %v", run.Label, run.IntervalS)
	}
	if got := run.Names(); len(got) != 2 || got[0] != "a.rate" || got[1] != "b.gauge" {
		t.Fatalf("names %v", got)
	}
	if vals := run.Get("a.rate").Values(); len(vals) != 3 || vals[0] != 25 {
		t.Fatalf("a.rate round-trip: %v", vals)
	}
}

func TestSanitizeNonFinite(t *testing.T) {
	s := sim.New()
	s.At(sim.Second, func() {})
	c := New(s, sim.Second)
	c.AddSource(func(tk *Tick) {
		tk.Gauge("nan", "", math.NaN())
		tk.Gauge("inf", "", math.Inf(1))
	})
	s.Run()
	for _, n := range []string{"nan", "inf"} {
		if v, _ := c.Get(n).Last(); v.V != 0 {
			t.Errorf("%s sanitized to %v, want 0", n, v.V)
		}
	}
}

func TestSumAndSpark(t *testing.T) {
	a := &Series{Name: "a"}
	b := &Series{Name: "b"}
	a.add(1, 10)
	a.add(2, 20)
	b.add(2, 5) // no point at t=1: contributes zero there
	sum := Sum([]*Series{a, b}, "total", "x")
	pts := sum.Points()
	if len(pts) != 2 || pts[0].V != 10 || pts[1].V != 25 {
		t.Fatalf("sum %v", pts)
	}
	if got := Spark([]float64{0, 1, 2, 4}, 4); len([]rune(got)) != 4 {
		t.Fatalf("spark %q", got)
	}
	if Spark([]float64{0, 0}, 0) != "▁▁" {
		t.Fatalf("all-zero spark %q", Spark([]float64{0, 0}, 0))
	}
}
