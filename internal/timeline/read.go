package timeline

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Run is one collector's worth of series reconstructed from a JSONL
// stream (a sweep concatenates several runs into one file).
type Run struct {
	Label     string
	IntervalS float64
	series    map[string]*Series
	names     []string
}

// Names returns the run's series names, sorted.
func (r *Run) Names() []string { return r.names }

// Get returns the named series, or nil.
func (r *Run) Get(name string) *Series { return r.series[name] }

// Series returns every series sorted by name.
func (r *Run) Series() []*Series {
	out := make([]*Series, len(r.names))
	for i, n := range r.names {
		out[i] = r.series[n]
	}
	return out
}

// Dump is a parsed timeline JSONL file.
type Dump struct {
	Runs []*Run
}

// ReadJSONL parses the stream a Collector in stream mode writes: header
// lines start a new run; {"t","v"} records add one window to the
// current run's series. Records before any header land in an unlabeled
// run, so hand-built streams without headers still parse.
func ReadJSONL(r io.Reader) (*Dump, error) {
	d := &Dump{}
	var cur *Run
	newRun := func(label string, interval float64) {
		cur = &Run{Label: label, IntervalS: interval, series: map[string]*Series{}}
		d.Runs = append(d.Runs, cur)
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec struct {
			Timeline  *string            `json:"timeline"`
			IntervalS float64            `json:"interval_s"`
			T         *float64           `json:"t"`
			V         map[string]float64 `json:"v"`
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("timeline: line %d: %w", lineNo, err)
		}
		switch {
		case rec.Timeline != nil:
			newRun(*rec.Timeline, rec.IntervalS)
		case rec.T != nil:
			if cur == nil {
				newRun("", 0)
			}
			names := make([]string, 0, len(rec.V))
			for n := range rec.V {
				names = append(names, n)
			}
			sort.Strings(names)
			for _, n := range names {
				se, ok := cur.series[n]
				if !ok {
					se = &Series{Name: n}
					cur.series[n] = se
					cur.names = append(cur.names, n)
				}
				se.add(*rec.T, rec.V[n])
			}
		default:
			return nil, fmt.Errorf("timeline: line %d: neither header nor record", lineNo)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("timeline: %w", err)
	}
	for _, run := range d.Runs {
		sort.Strings(run.names)
	}
	return d, nil
}
