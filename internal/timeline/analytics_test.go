package timeline

import (
	"math"
	"testing"
)

// fig5 builds a synthetic dip: 10 units/s baseline, collapse to ~0
// during [5,8), two ramp windows, then full recovery.
func fig5() []Point {
	var pts []Point
	for t := 1.0; t <= 20; t++ {
		v := 10.0
		switch {
		case t >= 5 && t < 8:
			v = 0.5
		case t == 8:
			v = 4 // ramp window below the 90% threshold
		}
		pts = append(pts, Point{T: t, V: v})
	}
	return pts
}

func TestAnalyzeDip(t *testing.T) {
	rep := AnalyzeDip(fig5(), 1, 5, 8, 20, 0.9)
	if rep.Baseline != 10 {
		t.Errorf("baseline %v, want 10", rep.Baseline)
	}
	if rep.Dip != 0.5 || rep.DipT != 5 {
		t.Errorf("dip %v at %v, want 0.5 at 5", rep.Dip, rep.DipT)
	}
	if want := 95.0; rep.DipDepthPct() != want {
		t.Errorf("dip depth %v%%, want %v%%", rep.DipDepthPct(), want)
	}
	if rep.OutageMean != 0.5 {
		t.Errorf("outage mean %v, want 0.5", rep.OutageMean)
	}
	// t=8 is the 4-unit ramp window (< 9 = 0.9*baseline); recovery lands
	// on the next window.
	if rep.RecoverAt != 9 || rep.TimeToRecover != 1 {
		t.Errorf("recover at %v (ttr %v), want 9 (ttr 1)", rep.RecoverAt, rep.TimeToRecover)
	}
	if rep.Recovered != 10 || rep.Ratio != 1 {
		t.Errorf("recovered %v ratio %v, want 10 and 1", rep.Recovered, rep.Ratio)
	}
}

func TestAnalyzeDipNeverRecovers(t *testing.T) {
	pts := []Point{{1, 10}, {2, 10}, {3, 1}, {4, 1}, {5, 1}}
	rep := AnalyzeDip(pts, 1, 3, 4, 6, 0.9)
	if rep.RecoverAt != -1 || rep.TimeToRecover != -1 {
		t.Errorf("recover %v/%v, want -1/-1", rep.RecoverAt, rep.TimeToRecover)
	}
	if rep.Recovered != 0 || rep.Ratio != 0 {
		t.Errorf("recovered %v ratio %v, want zeros", rep.Recovered, rep.Ratio)
	}
}

func TestMeanMinBetween(t *testing.T) {
	pts := []Point{{1, 4}, {2, 8}, {3, 2}}
	if m := MeanBetween(pts, 1, 3); m != 6 {
		t.Errorf("mean [1,3) = %v, want 6 (half-open: t=3 excluded)", m)
	}
	if m := MeanBetween(pts, 10, 20); m != 0 {
		t.Errorf("empty mean %v, want 0", m)
	}
	if tt, v := MinBetween(pts, 1, 4); tt != 3 || v != 2 {
		t.Errorf("min (%v,%v), want (3,2)", tt, v)
	}
	if tt, _ := MinBetween(pts, 10, 20); tt != -1 {
		t.Errorf("empty min t=%v, want -1", tt)
	}
}

func TestComputeImbalance(t *testing.T) {
	im := ComputeImbalance([]float64{10, 10, 10, 10})
	if im.MaxOverMean != 1 || im.CoV != 0 {
		t.Errorf("balanced: max/mean %v CoV %v", im.MaxOverMean, im.CoV)
	}
	im = ComputeImbalance([]float64{0, 20})
	if im.Mean != 10 || im.Max != 20 || im.MaxOverMean != 2 {
		t.Errorf("skewed: %+v", im)
	}
	if im.CoV != 1 { // population stddev of {0,20} is 10; mean 10
		t.Errorf("CoV %v, want 1", im.CoV)
	}
	if im := ComputeImbalance(nil); im.N != 0 || im.CoV != 0 {
		t.Errorf("empty: %+v", im)
	}
}

func TestCoVSeries(t *testing.T) {
	a, b := &Series{Name: "a"}, &Series{Name: "b"}
	a.add(1, 0)
	b.add(1, 20)
	a.add(2, 10)
	b.add(2, 10)
	a.add(3, 5) // b has no window at t=3: skipped (fewer than 2 series)
	cov := CoVSeries([]*Series{a, b}, "cov")
	pts := cov.Points()
	if len(pts) != 2 {
		t.Fatalf("got %d windows, want 2 (singleton window skipped): %v", len(pts), pts)
	}
	if pts[0].T != 1 || pts[0].V != 1 {
		t.Errorf("window 1: %v, want CoV 1", pts[0])
	}
	if pts[1].T != 2 || pts[1].V != 0 {
		t.Errorf("window 2: %v, want CoV 0", pts[1])
	}
}

func TestStragglerSkew(t *testing.T) {
	sk := StragglerSkew([]float64{4, 8, 8, 8})
	if sk.Min != 4 || sk.Median != 8 || sk.Max != 8 {
		t.Errorf("skew %+v", sk)
	}
	if sk.SlowdownVsMedian != 2 {
		t.Errorf("slowdown %v, want 2", sk.SlowdownVsMedian)
	}
	if sk := StragglerSkew([]float64{0, 8, 8}); !math.IsInf(sk.SlowdownVsMedian, 1) {
		t.Errorf("stalled rank: slowdown %v, want +Inf", sk.SlowdownVsMedian)
	}
	if sk := StragglerSkew(nil); sk.N != 0 || sk.SlowdownVsMedian != 0 {
		t.Errorf("empty: %+v", sk)
	}
	if sk := StragglerSkew([]float64{0, 0}); sk.SlowdownVsMedian != 0 {
		t.Errorf("all-zero: slowdown %v, want 0", sk.SlowdownVsMedian)
	}
}
