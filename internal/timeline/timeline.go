// Package timeline is the interval-windowed time-series plane: it turns
// the stack's cumulative counters into per-interval rates over virtual
// time, the representation behind every time-axis figure in the paper
// (the SC'03 dip-and-recovery of Fig. 5, the sustained multi-Gb/s
// plateaus of Figs. 10/11).
//
// A Collector ticks at a fixed virtual-time interval. At each tick it
// invokes its registered sources; a source enumerates live objects (NSD
// servers, links, clients, token managers) and emits the current value
// of each cumulative counter through Tick.Rate, which differences it
// against the previous tick and divides by the window to produce a
// rate, or an instantaneous value through Tick.Gauge. Series are born
// on first emission, so objects created mid-run join the timeline the
// window they appear.
//
// Retention is bounded the same two ways internal/trace bounds event
// retention: a per-series ring keeps only the last N windows (memory
// independent of run length), and a JSONL stream writes one line per
// tick and retains nothing. All values derive from virtual time and
// deterministic counters, so the stream is byte-identical across
// same-seed runs — the property the CI timeline gate diffs.
package timeline

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"gfs/internal/sim"
)

// Point is one window's value: T is the window-end virtual time in
// seconds, V the rate or gauge value over that window.
type Point struct {
	T float64
	V float64
}

// Series is one named time-series with optional ring retention.
type Series struct {
	Name string
	Unit string

	ring  int // max retained points; 0 = unbounded
	pts   []Point
	next  int // ring write cursor
	full  bool
	total int // points ever added, retained or not
}

// add appends one point, evicting the oldest when the ring is full.
func (se *Series) add(t, v float64) {
	se.total++
	if se.ring <= 0 {
		se.pts = append(se.pts, Point{t, v})
		return
	}
	if len(se.pts) < se.ring {
		se.pts = append(se.pts, Point{t, v})
		se.next = len(se.pts) % se.ring
		se.full = len(se.pts) == se.ring
		return
	}
	se.pts[se.next] = Point{t, v}
	se.next = (se.next + 1) % se.ring
	se.full = true
}

// Points returns the retained points oldest-first. The slice is shared
// in unbounded mode and freshly linearized in ring mode; callers must
// not mutate it.
func (se *Series) Points() []Point {
	if se.ring <= 0 || !se.full || se.next == 0 {
		return se.pts
	}
	out := make([]Point, 0, len(se.pts))
	out = append(out, se.pts[se.next:]...)
	out = append(out, se.pts[:se.next]...)
	return out
}

// Len returns the number of retained points.
func (se *Series) Len() int { return len(se.pts) }

// Total returns the number of points ever recorded, including those a
// ring has evicted.
func (se *Series) Total() int { return se.total }

// Last returns the most recent point, if any.
func (se *Series) Last() (Point, bool) {
	if len(se.pts) == 0 {
		return Point{}, false
	}
	if se.ring > 0 && se.full {
		return se.pts[(se.next+se.ring-1)%se.ring], true
	}
	return se.pts[len(se.pts)-1], true
}

// Values returns just the retained values oldest-first (for sparklines
// and imbalance math).
func (se *Series) Values() []float64 {
	pts := se.Points()
	out := make([]float64, len(pts))
	for i, p := range pts {
		out[i] = p.V
	}
	return out
}

// Snapshot is one tick's complete window: every series that emitted a
// value this interval, with deterministic (sorted) name order. It is a
// value type so exporters can hand copies across goroutines.
type Snapshot struct {
	T      float64 // window-end virtual time, seconds
	Names  []string
	Values map[string]float64
	Units  map[string]string
}

// Collector samples its sources at a fixed virtual-time interval.
type Collector struct {
	s        *sim.Sim
	interval sim.Time

	// Label names this collector in multi-run streams ("sim0", "sim1",
	// ...) so an offline reader can split a sweep's concatenated JSONL.
	Label string

	ring    int
	sources []func(*Tick)
	onTick  []func(*Collector, Snapshot)

	series  map[string]*Series
	names   []string // sorted lazily; rebuilt when dirty
	dirty   bool
	lastCum map[string]float64 // previous cumulative value per Rate/Ratio key

	stream      io.Writer
	streamErr   error
	wroteHeader bool

	last  Snapshot // most recent tick's window
	ticks int
}

// New builds a collector on s ticking every interval of virtual time
// and schedules its first tick. Ticks are daemon events: they fire
// while real work is queued but never keep Run from draining, so any
// number of collectors (and the mmpmon snapshot tick) can coexist
// without keeping each other alive.
func New(s *sim.Sim, interval sim.Time) *Collector {
	if interval <= 0 {
		panic("timeline: non-positive interval")
	}
	c := &Collector{
		s:        s,
		interval: interval,
		series:   map[string]*Series{},
		lastCum:  map[string]float64{},
	}
	s.AtDaemon(s.Now()+interval, c.tick)
	return c
}

// Interval returns the sampling interval.
func (c *Collector) Interval() sim.Time { return c.interval }

// Ticks returns how many windows have closed so far.
func (c *Collector) Ticks() int { return c.ticks }

// SetRing bounds every series (existing and future) to the last n
// points. Zero restores unbounded retention for future series only.
func (c *Collector) SetRing(n int) {
	c.ring = n
	for _, se := range c.series {
		se.ring = n
	}
}

// SetStream writes one JSONL line per tick to w: a header line naming
// the collector and its interval, then {"t":...,"v":{...}} records
// with sorted keys — byte-deterministic across same-seed runs. The
// first write error is latched and reported by StreamErr.
func (c *Collector) SetStream(w io.Writer) { c.stream = w }

// StreamErr returns the first streaming write error, if any.
func (c *Collector) StreamErr() error { return c.streamErr }

// AddSource registers a sampling function invoked at every tick.
func (c *Collector) AddSource(fn func(*Tick)) { c.sources = append(c.sources, fn) }

// OnTick registers a hook invoked after each window closes with the
// window's snapshot — the live-dashboard attachment point.
func (c *Collector) OnTick(fn func(*Collector, Snapshot)) { c.onTick = append(c.onTick, fn) }

// Get returns the named series, or nil.
func (c *Collector) Get(name string) *Series { return c.series[name] }

// Names returns every series name, sorted.
func (c *Collector) Names() []string {
	if c.dirty {
		sort.Strings(c.names)
		c.dirty = false
	}
	return c.names
}

// Series returns every series sorted by name.
func (c *Collector) Series() []*Series {
	names := c.Names()
	out := make([]*Series, len(names))
	for i, n := range names {
		out[i] = c.series[n]
	}
	return out
}

// Prefix returns the series whose names start with prefix, sorted.
func (c *Collector) Prefix(prefix string) []*Series {
	var out []*Series
	for _, n := range c.Names() {
		if strings.HasPrefix(n, prefix) {
			out = append(out, c.series[n])
		}
	}
	return out
}

// Snapshot returns the most recently closed window (empty before the
// first tick).
func (c *Collector) Snapshot() Snapshot { return c.last }

func (c *Collector) seriesFor(name, unit string) *Series {
	se, ok := c.series[name]
	if !ok {
		se = &Series{Name: name, Unit: unit, ring: c.ring}
		c.series[name] = se
		c.names = append(c.names, name)
		c.dirty = true
	}
	return se
}

// Tick carries one window's emissions from sources into the collector.
type Tick struct {
	c     *Collector
	t     sim.Time
	vals  map[string]float64
	units map[string]string
}

// sanitize keeps NaN/Inf out of the series and the JSON stream.
func sanitize(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

func (tk *Tick) emit(name, unit string, v float64) float64 {
	v = sanitize(v)
	tk.vals[name] = v
	tk.units[name] = unit
	return v
}

// Rate emits a cumulative counter: the value recorded is the delta
// since the previous tick divided by the interval in seconds. A
// counter first seen this tick differences against zero, which is
// correct for counters that start at zero with the simulation. The
// computed rate is returned so a source can derive further values
// (e.g. utilization = rate / capacity) without re-differencing.
func (tk *Tick) Rate(name, unit string, cum float64) float64 {
	prev := tk.c.lastCum[name]
	tk.c.lastCum[name] = cum
	return tk.emit(name, unit, (cum-prev)/tk.c.interval.Seconds())
}

// Ratio emits the windowed quotient of two cumulative counters:
// (num-prevNum)/(den-prevDen), or zero when the denominator did not
// advance. The canonical use is a per-window cache-hit rate from
// cumulative hits and accesses.
func (tk *Tick) Ratio(name, unit string, num, den float64) float64 {
	pn, pd := tk.c.lastCum[name+"\x00n"], tk.c.lastCum[name+"\x00d"]
	tk.c.lastCum[name+"\x00n"], tk.c.lastCum[name+"\x00d"] = num, den
	dn, dd := num-pn, den-pd
	if dd <= 0 {
		return tk.emit(name, unit, 0)
	}
	return tk.emit(name, unit, dn/dd)
}

// Seen reports whether the collector already tracks the named series.
// A source can use it to emit a noisy gauge only once it has ever been
// interesting (non-zero), while still recording the return to zero.
func (tk *Tick) Seen(name string) bool {
	_, ok := tk.c.series[name]
	return ok
}

// Gauge emits an instantaneous value (queue depth, in-flight RPCs).
func (tk *Tick) Gauge(name, unit string, v float64) float64 {
	return tk.emit(name, unit, v)
}

// tick closes one window: run the sources, record every emission,
// stream the JSONL line, fire the hooks, reschedule.
func (c *Collector) tick() {
	now := c.s.Now()
	tk := &Tick{c: c, t: now, vals: map[string]float64{}, units: map[string]string{}}
	for _, src := range c.sources {
		src(tk)
	}
	c.ticks++

	names := make([]string, 0, len(tk.vals))
	for n := range tk.vals {
		names = append(names, n)
	}
	sort.Strings(names)
	secs := now.Seconds()
	for _, n := range names {
		c.seriesFor(n, tk.units[n]).add(secs, tk.vals[n])
	}
	c.last = Snapshot{T: secs, Names: names, Values: tk.vals, Units: tk.units}

	if c.stream != nil && c.streamErr == nil {
		c.writeStreamLine(secs, names, tk.vals)
	}
	for _, fn := range c.onTick {
		fn(c, c.last)
	}

	// Daemon events never keep Run alive, so reschedule unconditionally.
	c.s.AtDaemon(now+c.interval, c.tick)
}

// writeStreamLine renders one JSONL record by hand: sorted keys and
// shortest-round-trip floats, so the byte stream is a deterministic
// function of the (deterministic) values.
func (c *Collector) writeStreamLine(t float64, names []string, vals map[string]float64) {
	var b strings.Builder
	if !c.wroteHeader {
		b.WriteString(`{"timeline":"`)
		b.WriteString(c.Label)
		b.WriteString(`","interval_s":`)
		b.WriteString(strconv.FormatFloat(c.interval.Seconds(), 'g', -1, 64))
		b.WriteString("}\n")
		c.wroteHeader = true
	}
	b.WriteString(`{"t":`)
	b.WriteString(strconv.FormatFloat(t, 'g', -1, 64))
	b.WriteString(`,"v":{`)
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteByte('"')
		b.WriteString(n)
		b.WriteString(`":`)
		b.WriteString(strconv.FormatFloat(vals[n], 'g', -1, 64))
	}
	b.WriteString("}}\n")
	if _, err := io.WriteString(c.stream, b.String()); err != nil {
		c.streamErr = fmt.Errorf("timeline: stream: %w", err)
	}
}

// Sum builds a new series summing a group by window time (union of
// times; a series without a point at some time contributes zero). All
// inputs must come from one collector so times align exactly.
func Sum(group []*Series, name, unit string) *Series {
	acc := map[float64]float64{}
	for _, se := range group {
		for _, p := range se.Points() {
			acc[p.T] += p.V
		}
	}
	ts := make([]float64, 0, len(acc))
	for t := range acc {
		ts = append(ts, t)
	}
	sort.Float64s(ts)
	out := &Series{Name: name, Unit: unit}
	for _, t := range ts {
		out.add(t, acc[t])
	}
	return out
}

// Spark renders values as a unicode sparkline scaled to max (computed
// from the data when max <= 0).
func Spark(vals []float64, max float64) string {
	const ramp = "▁▂▃▄▅▆▇█"
	levels := []rune(ramp)
	if max <= 0 {
		for _, v := range vals {
			if v > max {
				max = v
			}
		}
	}
	var b strings.Builder
	for _, v := range vals {
		i := 0
		if max > 0 {
			i = int(v / max * float64(len(levels)-1))
			if i < 0 {
				i = 0
			}
			if i >= len(levels) {
				i = len(levels) - 1
			}
		}
		b.WriteRune(levels[i])
	}
	return b.String()
}
