package hsm

import (
	"fmt"

	"gfs/internal/sim"
	"gfs/internal/units"
)

// §8: "SDSC and the Pittsburgh Supercomputing Center are already providing
// remote second copies for each other's archives" — the paper's "copyright
// library" model, where a guaranteed copy exists at a peer site "from
// which replacements can be obtained after local catastrophes". This file
// implements that: a WAN replicator between two archive managers, replica
// bookkeeping, catastrophe injection and restore.

// replica is a second copy held on this site's tape for a peer's file.
type replica struct {
	owner string // the peer site holding the primary
	name  string
	size  units.Bytes
	addr  tapeAddr
}

// Replicator pushes second copies between two archive sites over a WAN.
type Replicator struct {
	sim  *sim.Sim
	A, B *Manager
	rate units.BytesPerSec // WAN transfer rate between the sites

	replicated uint64
	restored   uint64
}

// NewReplicator joins two managers at the given WAN rate.
func NewReplicator(s *sim.Sim, a, b *Manager, rate units.BytesPerSec) *Replicator {
	if rate <= 0 {
		panic("hsm: replicator rate")
	}
	return &Replicator{sim: s, A: a, B: b, rate: rate}
}

// peerOf returns the other site.
func (r *Replicator) peerOf(m *Manager) (*Manager, error) {
	switch m {
	case r.A:
		return r.B, nil
	case r.B:
		return r.A, nil
	}
	return nil, fmt.Errorf("hsm: manager not part of this replication pair")
}

// Replicated returns the number of second copies written.
func (r *Replicator) Replicated() uint64 { return r.replicated }

// Restored returns the number of catastrophe recoveries served.
func (r *Replicator) Restored() uint64 { return r.restored }

// Replicate streams owner's file to the peer's tape: read locally (disk,
// or tape when already migrated), cross the WAN, write the peer cartridge.
func (r *Replicator) Replicate(p *sim.Proc, owner *Manager, name string) error {
	peer, err := r.peerOf(owner)
	if err != nil {
		return err
	}
	e, ok := owner.files[name]
	if !ok {
		return fmt.Errorf("hsm: %s not managed at %s", name, owner.name)
	}
	if _, dup := peer.replicas[ownerKey(owner, name)]; dup {
		return nil // already replicated
	}
	// Source read.
	if e.state == Migrated {
		owner.lib.io(p, e.addr, e.size)
	} else {
		p.Sleep(sim.FromSeconds(float64(e.size) / float64(owner.DiskRate)))
	}
	// WAN transfer.
	p.Sleep(sim.FromSeconds(float64(e.size) / float64(r.rate)))
	// Peer tape write.
	addr, err := peer.lib.allocate(e.size)
	if err != nil {
		return fmt.Errorf("hsm: replica allocation at %s: %w", peer.name, err)
	}
	peer.lib.io(p, addr, e.size)
	if peer.replicas == nil {
		peer.replicas = make(map[string]replica)
	}
	peer.replicas[ownerKey(owner, name)] = replica{owner: owner.name, name: name, size: e.size, addr: addr}
	r.replicated++
	return nil
}

// HasReplicaOf reports whether m holds a second copy of the peer's file.
func (m *Manager) HasReplicaOf(owner *Manager, name string) bool {
	_, ok := m.replicas[ownerKey(owner, name)]
	return ok
}

// Catastrophe destroys the local primary (disk and tape copy alike) — the
// event the copyright-library model exists for.
func (m *Manager) Catastrophe(name string) error {
	e, ok := m.files[name]
	if !ok {
		return fmt.Errorf("hsm: %s not managed", name)
	}
	if e.state != Migrated {
		m.diskUsed -= e.size
	}
	delete(m.files, name)
	return nil
}

// Restore rebuilds owner's lost file from the peer's replica: peer tape
// read, WAN transfer back, local disk landing (state Resident).
func (r *Replicator) Restore(p *sim.Proc, owner *Manager, name string) error {
	peer, err := r.peerOf(owner)
	if err != nil {
		return err
	}
	rep, ok := peer.replicas[ownerKey(owner, name)]
	if !ok {
		return fmt.Errorf("hsm: %s holds no replica of %s", peer.name, name)
	}
	if _, exists := owner.files[name]; exists {
		return fmt.Errorf("hsm: %s still exists at %s", name, owner.name)
	}
	if err := owner.makeRoom(p, rep.size); err != nil {
		return err
	}
	peer.lib.io(p, rep.addr, rep.size)
	p.Sleep(sim.FromSeconds(float64(rep.size) / float64(r.rate)))
	p.Sleep(sim.FromSeconds(float64(rep.size) / float64(owner.DiskRate)))
	owner.files[name] = &entry{name: name, size: rep.size, state: Resident, lastAccess: r.sim.Now()}
	owner.diskUsed += rep.size
	r.restored++
	return nil
}

func ownerKey(owner *Manager, name string) string { return owner.name + ":" + name }
