package hsm

import (
	"fmt"
	"testing"
	"testing/quick"

	"gfs/internal/sim"
	"gfs/internal/units"
)

func newMgr(s *sim.Sim, diskCap units.Bytes, drives, carts int) *Manager {
	lib := NewLibrary(s, "silo", drives, carts, LTO2())
	return NewManager(s, "hsm", lib, diskCap)
}

func run(t *testing.T, s *sim.Sim, fn func(p *sim.Proc) error) {
	t.Helper()
	var err error
	done := false
	s.Go("t", func(p *sim.Proc) { err = fn(p); done = true })
	s.Run()
	if !done {
		t.Fatal("deadlock")
	}
	if err != nil {
		t.Fatal(err)
	}
}

func TestIngestStaysResidentBelowWatermark(t *testing.T) {
	s := sim.New()
	m := newMgr(s, 100*units.GB, 2, 10)
	run(t, s, func(p *sim.Proc) error {
		if err := m.Ingest(p, "/a", 50*units.GB); err != nil {
			return err
		}
		st, ok := m.StateOf("/a")
		if !ok || st != Resident {
			return fmt.Errorf("state = %v, %v", st, ok)
		}
		if m.DiskUsed() != 50*units.GB {
			return fmt.Errorf("disk used = %v", m.DiskUsed())
		}
		return nil
	})
}

func TestWatermarkMigration(t *testing.T) {
	s := sim.New()
	m := newMgr(s, 100*units.GB, 2, 10)
	run(t, s, func(p *sim.Proc) error {
		for i := 0; i < 5; i++ {
			if err := m.Ingest(p, fmt.Sprintf("/f%d", i), 19*units.GB); err != nil {
				return err
			}
			p.Sleep(sim.Minute) // distinct access times
		}
		// 95 GB > 90 GB high water: oldest files must migrate to <=75 GB.
		if m.DiskUsed() > 75*units.GB {
			return fmt.Errorf("disk used %v after migration", m.DiskUsed())
		}
		if m.Migrations() == 0 {
			return fmt.Errorf("no migrations recorded")
		}
		st, _ := m.StateOf("/f0")
		if st != Migrated {
			return fmt.Errorf("LRU file /f0 state = %v, want migrated", st)
		}
		st, _ = m.StateOf("/f4")
		if st != Resident {
			return fmt.Errorf("hottest file migrated")
		}
		return nil
	})
}

func TestRecallIsTransparentAndSlow(t *testing.T) {
	s := sim.New()
	m := newMgr(s, 100*units.GB, 1, 10)
	run(t, s, func(p *sim.Proc) error {
		for i := 0; i < 5; i++ {
			if err := m.Ingest(p, fmt.Sprintf("/f%d", i), 19*units.GB); err != nil {
				return err
			}
			p.Sleep(sim.Minute)
		}
		st, _ := m.StateOf("/f0")
		if st != Migrated {
			return fmt.Errorf("setup: /f0 not migrated")
		}
		t0 := p.Now()
		prev, err := m.Access(p, "/f0")
		if err != nil {
			return err
		}
		el := p.Now() - t0
		if prev != Migrated {
			return fmt.Errorf("prev state = %v", prev)
		}
		st, _ = m.StateOf("/f0")
		if st != Dual {
			return fmt.Errorf("after recall state = %v, want dual", st)
		}
		// 19 GB at 30 MB/s is ~10.5 min, plus load time.
		if el < 10*sim.Minute {
			return fmt.Errorf("recall took %v; tape cannot be that fast", el)
		}
		if m.Recalls() != 1 {
			return fmt.Errorf("recalls = %d", m.Recalls())
		}
		return nil
	})
}

func TestAccessResidentIsFast(t *testing.T) {
	s := sim.New()
	m := newMgr(s, 100*units.GB, 1, 10)
	run(t, s, func(p *sim.Proc) error {
		if err := m.Ingest(p, "/hot", 10*units.GB); err != nil {
			return err
		}
		t0 := p.Now()
		if _, err := m.Access(p, "/hot"); err != nil {
			return err
		}
		if p.Now() != t0 {
			return fmt.Errorf("resident access took time")
		}
		return nil
	})
}

func TestPremigrateKeepsDiskCopy(t *testing.T) {
	s := sim.New()
	m := newMgr(s, 100*units.GB, 1, 10)
	run(t, s, func(p *sim.Proc) error {
		if err := m.Ingest(p, "/x", 10*units.GB); err != nil {
			return err
		}
		used := m.DiskUsed()
		if err := m.Premigrate(p, "/x"); err != nil {
			return err
		}
		if m.DiskUsed() != used {
			return fmt.Errorf("premigrate changed disk use")
		}
		st, _ := m.StateOf("/x")
		if st != Dual {
			return fmt.Errorf("state = %v", st)
		}
		// Release is instant and frees disk.
		t0 := p.Now()
		if err := m.Release("/x"); err != nil {
			return err
		}
		if p.Now() != t0 {
			return fmt.Errorf("release took time")
		}
		if m.DiskUsed() != used-10*units.GB {
			return fmt.Errorf("release did not free disk")
		}
		return nil
	})
}

func TestIngestTooLargeFails(t *testing.T) {
	s := sim.New()
	m := newMgr(s, 10*units.GB, 1, 4)
	var err error
	s.Go("t", func(p *sim.Proc) { err = m.Ingest(p, "/huge", 20*units.GB) })
	s.Run()
	if err == nil {
		t.Fatal("oversized ingest accepted")
	}
}

func TestCartridgeOverflow(t *testing.T) {
	s := sim.New()
	// 1 cartridge of 200 GB; disk pool small so everything migrates.
	lib := NewLibrary(s, "tiny", 1, 1, LTO2())
	m := NewManager(s, "hsm", lib, 50*units.GB)
	var lastErr error
	s.Go("t", func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			if err := m.Ingest(p, fmt.Sprintf("/f%d", i), 45*units.GB); err != nil {
				lastErr = err
				return
			}
			p.Sleep(sim.Minute)
		}
	})
	s.Run()
	if lastErr == nil {
		t.Fatal("library overflow undetected")
	}
}

func TestDualFilesReleasedBeforeTapeWrites(t *testing.T) {
	s := sim.New()
	m := newMgr(s, 100*units.GB, 2, 10)
	run(t, s, func(p *sim.Proc) error {
		if err := m.Ingest(p, "/a", 40*units.GB); err != nil {
			return err
		}
		if err := m.Premigrate(p, "/a"); err != nil {
			return err
		}
		p.Sleep(sim.Minute)
		if err := m.Ingest(p, "/b", 40*units.GB); err != nil {
			return err
		}
		p.Sleep(sim.Minute)
		// This pushes past high water; /a is dual, so policy releases it
		// without a second tape write.
		mig0 := m.Migrations()
		if err := m.Ingest(p, "/c", 19*units.GB); err != nil {
			return err
		}
		st, _ := m.StateOf("/a")
		if st != Migrated {
			return fmt.Errorf("/a = %v", st)
		}
		if m.Migrations() != mig0+1 {
			return fmt.Errorf("migrations = %d", m.Migrations())
		}
		return nil
	})
}

// Property: disk accounting is exact — used equals the sum of on-disk file
// sizes after arbitrary ingest/access traffic.
func TestPropertyDiskAccounting(t *testing.T) {
	f := func(sizesRaw []uint8) bool {
		if len(sizesRaw) > 12 {
			sizesRaw = sizesRaw[:12]
		}
		s := sim.New()
		m := newMgr(s, 200*units.GB, 2, 50)
		ok := true
		s.Go("t", func(p *sim.Proc) {
			for i, raw := range sizesRaw {
				size := units.Bytes(int(raw)%30+1) * units.GB
				if err := m.Ingest(p, fmt.Sprintf("/f%d", i), size); err != nil {
					ok = false
					return
				}
				p.Sleep(sim.Minute)
			}
			var want units.Bytes
			for name := range m.files {
				if st, _ := m.StateOf(name); st != Migrated {
					want += m.files[name].size
				}
			}
			if m.DiskUsed() != want {
				ok = false
			}
		})
		s.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
