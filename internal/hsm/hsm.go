// Package hsm models the Hierarchical Storage Management layer the paper
// marks as the GFS's future (§8): a tape library behind the disk farm,
// watermark-driven migration of cold data to tape, and transparent recall
// when migrated data is touched again. SDSC ran SAM-QFS and HPSS this way;
// the paper argues most sites will instead rely on a few archive-capable
// "copyright library" sites.
package hsm

import (
	"fmt"
	"sort"

	"gfs/internal/sim"
	"gfs/internal/units"
)

// TapeParams models a 2005-era LTO-2 class drive.
type TapeParams struct {
	LoadTime     sim.Time          // robot fetch + load + thread
	SeekRate     units.BytesPerSec // locate speed along the tape
	TransferRate units.BytesPerSec // streaming rate
	Capacity     units.Bytes       // per cartridge
}

// LTO2 returns typical LTO-2 parameters.
func LTO2() TapeParams {
	return TapeParams{
		LoadTime:     45 * sim.Second,
		SeekRate:     1200 * units.MBps, // fast locate
		TransferRate: 30 * units.MBps,
		Capacity:     200 * units.GB,
	}
}

// Drive is one tape drive; it serializes its operations.
type Drive struct {
	sim    *sim.Sim
	name   string
	params TapeParams
	queue  *sim.Resource

	loadedCart int // -1 = empty
	pos        units.Bytes

	mounts    uint64
	bytesIO   units.Bytes
	busyUntil sim.Time
}

// Library is a tape robot: cartridges plus drives.
type Library struct {
	sim    *sim.Sim
	name   string
	drives []*Drive
	params TapeParams

	carts     int
	cartUsed  []units.Bytes
	nextCart  int
	drivePick int
}

// NewLibrary builds a library with the given drive and cartridge counts.
func NewLibrary(s *sim.Sim, name string, drives, cartridges int, params TapeParams) *Library {
	if drives < 1 || cartridges < 1 {
		panic(fmt.Sprintf("hsm: library %q needs drives and cartridges", name))
	}
	l := &Library{sim: s, name: name, params: params, carts: cartridges, cartUsed: make([]units.Bytes, cartridges)}
	for i := 0; i < drives; i++ {
		l.drives = append(l.drives, &Drive{
			sim: s, name: fmt.Sprintf("%s/drive%d", name, i), params: params,
			queue: sim.NewResource(s, fmt.Sprintf("%s/d%d", name, i), 1), loadedCart: -1,
		})
	}
	return l
}

// Drives returns the number of drives.
func (l *Library) Drives() int { return len(l.drives) }

// Capacity returns total cartridge capacity.
func (l *Library) Capacity() units.Bytes {
	return units.Bytes(l.carts) * l.params.Capacity
}

// tapeAddr is where a migrated file landed.
type tapeAddr struct {
	Cart int
	Off  units.Bytes
}

// allocate places size bytes on a cartridge (append-only, like SAM).
func (l *Library) allocate(size units.Bytes) (tapeAddr, error) {
	for tries := 0; tries < l.carts; tries++ {
		c := (l.nextCart + tries) % l.carts
		if l.cartUsed[c]+size <= l.params.Capacity {
			addr := tapeAddr{Cart: c, Off: l.cartUsed[c]}
			l.cartUsed[c] += size
			l.nextCart = c
			return addr, nil
		}
	}
	return tapeAddr{}, fmt.Errorf("hsm: %s: all cartridges full", l.name)
}

// io performs a tape read or write of size at addr, blocking p for load,
// locate and streaming time on a chosen drive.
func (l *Library) io(p *sim.Proc, addr tapeAddr, size units.Bytes) {
	d := l.drives[l.drivePick%len(l.drives)]
	l.drivePick++
	d.queue.Acquire(p, 1)
	defer d.queue.Release(1)
	t := sim.Time(0)
	if d.loadedCart != addr.Cart {
		t += l.params.LoadTime
		d.loadedCart = addr.Cart
		d.pos = 0
		d.mounts++
	}
	seek := addr.Off - d.pos
	if seek < 0 {
		seek = -seek
	}
	t += sim.FromSeconds(float64(seek) / float64(l.params.SeekRate))
	t += sim.FromSeconds(float64(size) / float64(l.params.TransferRate))
	d.pos = addr.Off + size
	d.bytesIO += size
	p.Sleep(t)
}

// State is where a managed file's bytes live.
type State int

// File states.
const (
	Resident State = iota // disk only
	Dual                  // disk + tape (premigrated)
	Migrated              // tape only; disk stub
)

func (s State) String() string {
	switch s {
	case Dual:
		return "dual"
	case Migrated:
		return "migrated"
	default:
		return "resident"
	}
}

// entry is one managed file.
type entry struct {
	name       string
	size       units.Bytes
	state      State
	addr       tapeAddr
	lastAccess sim.Time
}

// Manager is the HSM policy engine over a disk pool of fixed capacity.
type Manager struct {
	sim  *sim.Sim
	lib  *Library
	name string

	// DiskCapacity is the managed disk pool size.
	DiskCapacity units.Bytes
	// HighWater starts migration when disk use exceeds this fraction.
	HighWater float64
	// LowWater is the target fraction migration drains to.
	LowWater float64
	// DiskRate approximates the disk pool's streaming bandwidth for
	// migrate/recall staging.
	DiskRate units.BytesPerSec

	files    map[string]*entry
	diskUsed units.Bytes

	migrations uint64
	recalls    uint64
	replicas   map[string]replica
}

// NewManager creates an HSM manager.
func NewManager(s *sim.Sim, name string, lib *Library, diskCap units.Bytes) *Manager {
	return &Manager{
		sim: s, lib: lib, name: name,
		DiskCapacity: diskCap, HighWater: 0.9, LowWater: 0.75,
		DiskRate: 2 * units.GBps,
		files:    make(map[string]*entry),
	}
}

// DiskUsed returns current disk pool occupancy.
func (m *Manager) DiskUsed() units.Bytes { return m.diskUsed }

// Migrations returns the number of files migrated to tape.
func (m *Manager) Migrations() uint64 { return m.migrations }

// Recalls returns the number of tape recalls.
func (m *Manager) Recalls() uint64 { return m.recalls }

// StateOf reports a managed file's state.
func (m *Manager) StateOf(name string) (State, bool) {
	e, ok := m.files[name]
	if !ok {
		return Resident, false
	}
	return e.state, true
}

// Ingest registers a new resident file (just written to the GFS), then
// runs the watermark policy.
func (m *Manager) Ingest(p *sim.Proc, name string, size units.Bytes) error {
	if _, dup := m.files[name]; dup {
		return fmt.Errorf("hsm: %s already managed", name)
	}
	if size > m.DiskCapacity {
		return fmt.Errorf("hsm: %s (%v) exceeds the disk pool", name, size)
	}
	m.files[name] = &entry{name: name, size: size, state: Resident, lastAccess: m.sim.Now()}
	m.diskUsed += size
	return m.enforceWatermarks(p)
}

// Access touches a file, transparently recalling it from tape if needed,
// and returns the state it was in before the access.
func (m *Manager) Access(p *sim.Proc, name string) (State, error) {
	e, ok := m.files[name]
	if !ok {
		return Resident, fmt.Errorf("hsm: %s not managed", name)
	}
	prev := e.state
	if e.state == Migrated {
		// Recall: make room, stream from tape to disk.
		m.recalls++
		if err := m.makeRoom(p, e.size); err != nil {
			return prev, err
		}
		m.lib.io(p, e.addr, e.size)
		p.Sleep(sim.FromSeconds(float64(e.size) / float64(m.DiskRate)))
		e.state = Dual // tape copy remains valid
		m.diskUsed += e.size
	}
	e.lastAccess = m.sim.Now()
	return prev, nil
}

// Premigrate writes a tape copy while keeping the disk copy (state Dual) —
// the cheap-to-release form SAM calls "premigration", and the mechanism
// behind the paper's remote second-copy replication with PSC.
func (m *Manager) Premigrate(p *sim.Proc, name string) error {
	e, ok := m.files[name]
	if !ok {
		return fmt.Errorf("hsm: %s not managed", name)
	}
	if e.state != Resident {
		return nil
	}
	addr, err := m.lib.allocate(e.size)
	if err != nil {
		return err
	}
	p.Sleep(sim.FromSeconds(float64(e.size) / float64(m.DiskRate)))
	m.lib.io(p, addr, e.size)
	e.addr = addr
	e.state = Dual
	return nil
}

// Release drops the disk copy of a Dual file (instant — the tape copy
// already exists).
func (m *Manager) Release(name string) error {
	e, ok := m.files[name]
	if !ok {
		return fmt.Errorf("hsm: %s not managed", name)
	}
	if e.state != Dual {
		return fmt.Errorf("hsm: %s is %v, not dual", name, e.state)
	}
	e.state = Migrated
	m.diskUsed -= e.size
	m.migrations++
	return nil
}

// enforceWatermarks migrates least-recently-used files until below the
// low watermark, if the high watermark is exceeded.
func (m *Manager) enforceWatermarks(p *sim.Proc) error {
	high := units.Bytes(float64(m.DiskCapacity) * m.HighWater)
	if m.diskUsed <= high {
		return nil
	}
	low := units.Bytes(float64(m.DiskCapacity) * m.LowWater)
	for _, e := range m.lruOrder() {
		if m.diskUsed <= low {
			break
		}
		if e.state == Dual {
			if err := m.Release(e.name); err != nil {
				return err
			}
			continue
		}
		if e.state != Resident {
			continue
		}
		if err := m.Premigrate(p, e.name); err != nil {
			return err
		}
		if err := m.Release(e.name); err != nil {
			return err
		}
	}
	if m.diskUsed > high {
		return fmt.Errorf("hsm: %s cannot reach low watermark", m.name)
	}
	return nil
}

// makeRoom frees disk for an incoming recall.
func (m *Manager) makeRoom(p *sim.Proc, need units.Bytes) error {
	for m.diskUsed+need > m.DiskCapacity {
		freed := false
		for _, e := range m.lruOrder() {
			if e.state == Dual {
				if err := m.Release(e.name); err != nil {
					return err
				}
				freed = true
				break
			}
			if e.state == Resident {
				if err := m.Premigrate(p, e.name); err != nil {
					return err
				}
				if err := m.Release(e.name); err != nil {
					return err
				}
				freed = true
				break
			}
		}
		if !freed {
			return fmt.Errorf("hsm: no room for %v recall", need)
		}
	}
	return nil
}

// lruOrder returns on-disk entries, least recently used first.
func (m *Manager) lruOrder() []*entry {
	var out []*entry
	for _, e := range m.files {
		if e.state != Migrated {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].lastAccess != out[j].lastAccess {
			return out[i].lastAccess < out[j].lastAccess
		}
		return out[i].name < out[j].name
	})
	return out
}
