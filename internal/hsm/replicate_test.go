package hsm

import (
	"fmt"
	"testing"

	"gfs/internal/sim"
	"gfs/internal/units"
)

// archivePair builds the SDSC/PSC mutual-second-copy arrangement.
func archivePair(s *sim.Sim) (*Manager, *Manager, *Replicator) {
	sdsc := NewManager(s, "sdsc", NewLibrary(s, "sdsc-silo", 4, 40, LTO2()), 2*units.TB)
	psc := NewManager(s, "psc", NewLibrary(s, "psc-silo", 4, 40, LTO2()), 2*units.TB)
	// TeraGrid between them: ~1 GB/s effective.
	r := NewReplicator(s, sdsc, psc, units.GBps)
	return sdsc, psc, r
}

func TestReplicateCreatesSecondCopy(t *testing.T) {
	s := sim.New()
	sdsc, psc, r := archivePair(s)
	run(t, s, func(p *sim.Proc) error {
		if err := sdsc.Ingest(p, "/enzo-2005", 100*units.GB); err != nil {
			return err
		}
		t0 := p.Now()
		if err := r.Replicate(p, sdsc, "/enzo-2005"); err != nil {
			return err
		}
		el := p.Now() - t0
		if !psc.HasReplicaOf(sdsc, "/enzo-2005") {
			return fmt.Errorf("no replica at psc")
		}
		if psc.HasReplicaOf(psc, "/enzo-2005") {
			return fmt.Errorf("replica recorded under wrong owner")
		}
		// 100 GB: >= WAN (100 s) and peer tape write (~3333 s).
		if el < 3000*sim.Second {
			return fmt.Errorf("replication took only %v", el)
		}
		if r.Replicated() != 1 {
			return fmt.Errorf("replicated = %d", r.Replicated())
		}
		// Idempotent.
		if err := r.Replicate(p, sdsc, "/enzo-2005"); err != nil {
			return err
		}
		if r.Replicated() != 1 {
			return fmt.Errorf("duplicate replication")
		}
		return nil
	})
}

func TestCatastropheAndRestore(t *testing.T) {
	s := sim.New()
	sdsc, _, r := archivePair(s)
	run(t, s, func(p *sim.Proc) error {
		if err := sdsc.Ingest(p, "/nvo", 50*units.GB); err != nil {
			return err
		}
		if err := r.Replicate(p, sdsc, "/nvo"); err != nil {
			return err
		}
		used := sdsc.DiskUsed()
		if err := sdsc.Catastrophe("/nvo"); err != nil {
			return err
		}
		if _, ok := sdsc.StateOf("/nvo"); ok {
			return fmt.Errorf("file survived the catastrophe")
		}
		if sdsc.DiskUsed() != used-50*units.GB {
			return fmt.Errorf("disk accounting after catastrophe: %v", sdsc.DiskUsed())
		}
		if err := r.Restore(p, sdsc, "/nvo"); err != nil {
			return err
		}
		st, ok := sdsc.StateOf("/nvo")
		if !ok || st != Resident {
			return fmt.Errorf("restored state = %v, %v", st, ok)
		}
		if r.Restored() != 1 {
			return fmt.Errorf("restored = %d", r.Restored())
		}
		return nil
	})
}

func TestRestoreWithoutReplicaFails(t *testing.T) {
	s := sim.New()
	sdsc, _, r := archivePair(s)
	run(t, s, func(p *sim.Proc) error {
		if err := sdsc.Ingest(p, "/lost", 10*units.GB); err != nil {
			return err
		}
		if err := sdsc.Catastrophe("/lost"); err != nil {
			return err
		}
		if err := r.Restore(p, sdsc, "/lost"); err == nil {
			return fmt.Errorf("restore without replica succeeded")
		}
		return nil
	})
}

func TestRestoreOfLiveFileFails(t *testing.T) {
	s := sim.New()
	sdsc, _, r := archivePair(s)
	run(t, s, func(p *sim.Proc) error {
		if err := sdsc.Ingest(p, "/alive", 10*units.GB); err != nil {
			return err
		}
		if err := r.Replicate(p, sdsc, "/alive"); err != nil {
			return err
		}
		if err := r.Restore(p, sdsc, "/alive"); err == nil {
			return fmt.Errorf("restore over a live file succeeded")
		}
		return nil
	})
}

func TestReplicateMigratedFileReadsTape(t *testing.T) {
	s := sim.New()
	sdsc, psc, r := archivePair(s)
	run(t, s, func(p *sim.Proc) error {
		if err := sdsc.Ingest(p, "/cold", 100*units.GB); err != nil {
			return err
		}
		if err := sdsc.Premigrate(p, "/cold"); err != nil {
			return err
		}
		if err := sdsc.Release("/cold"); err != nil {
			return err
		}
		t0 := p.Now()
		if err := r.Replicate(p, sdsc, "/cold"); err != nil {
			return err
		}
		el := p.Now() - t0
		// Source tape read (~3333 s) + WAN + dest tape write (~3333 s).
		if el < 6000*sim.Second {
			return fmt.Errorf("migrated-source replication took only %v", el)
		}
		if !psc.HasReplicaOf(sdsc, "/cold") {
			return fmt.Errorf("no replica")
		}
		return nil
	})
}

func TestReplicatorRejectsForeignManager(t *testing.T) {
	s := sim.New()
	_, _, r := archivePair(s)
	stranger := NewManager(s, "ncsa", NewLibrary(s, "x", 1, 2, LTO2()), units.TB)
	var err error
	s.Go("t", func(p *sim.Proc) {
		_ = stranger.Ingest(p, "/f", units.GB)
		err = r.Replicate(p, stranger, "/f")
	})
	s.Run()
	if err == nil {
		t.Fatal("foreign manager accepted")
	}
}

func TestMutualSecondCopies(t *testing.T) {
	// Both directions, as SDSC and PSC ran it.
	s := sim.New()
	sdsc, psc, r := archivePair(s)
	run(t, s, func(p *sim.Proc) error {
		if err := sdsc.Ingest(p, "/west", 20*units.GB); err != nil {
			return err
		}
		if err := psc.Ingest(p, "/east", 30*units.GB); err != nil {
			return err
		}
		if err := r.Replicate(p, sdsc, "/west"); err != nil {
			return err
		}
		if err := r.Replicate(p, psc, "/east"); err != nil {
			return err
		}
		if !psc.HasReplicaOf(sdsc, "/west") || !sdsc.HasReplicaOf(psc, "/east") {
			return fmt.Errorf("mutual replication incomplete")
		}
		return nil
	})
}
